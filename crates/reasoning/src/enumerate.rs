//! Enumeration of k-patterns (paper, Definition 3.3 and Proposition 3.5).
//!
//! `P*_k(σ_j)` is built bottom-up: a tree rooted at σ_j chooses, for every
//! part σ_α nested under σ_j, a subset of the trees in `P*_k(σ_α)` and a
//! multiplicity in `1..=k` for each chosen tree. The number of k-patterns
//! is non-elementary in the nesting depth, so enumeration carries an
//! explicit budget.

use crate::error::{ReasoningError, Result};
use crate::pattern::Pattern;
use ndl_core::prelude::*;

/// Default budget on the number of enumerated patterns.
pub const DEFAULT_PATTERN_BUDGET: usize = 500_000;

/// Canonical tree value used during enumeration (children kept sorted).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Tree {
    part: PartId,
    children: Vec<Tree>,
}

impl Tree {
    fn size(&self) -> usize {
        1 + self.children.iter().map(Tree::size).sum::<usize>()
    }
}

/// The set `P_k(σ)` of k-patterns of a nested tgd (Proposition 3.5:
/// `P_k(σ) = P*_k(σ_1)` for the top-level part σ_1), in a deterministic
/// order. Fails with [`ReasoningError::PatternBudgetExceeded`] if more than
/// `budget` trees would be produced.
pub fn k_patterns(tgd: &NestedTgd, k: usize, budget: usize) -> Result<Vec<Pattern>> {
    let mut counter = 0usize;
    let trees = pk_star(tgd, tgd.root(), k, budget, &mut counter)?;
    Ok(trees.iter().map(tree_to_pattern).collect())
}

/// The number of k-patterns without materializing them as [`Pattern`]s.
pub fn count_k_patterns(tgd: &NestedTgd, k: usize, budget: usize) -> Result<usize> {
    let mut counter = 0usize;
    Ok(pk_star(tgd, tgd.root(), k, budget, &mut counter)?.len())
}

/// The size of the largest k-pattern.
pub fn max_k_pattern_size(tgd: &NestedTgd, k: usize, budget: usize) -> Result<usize> {
    let mut counter = 0usize;
    Ok(pk_star(tgd, tgd.root(), k, budget, &mut counter)?
        .iter()
        .map(Tree::size)
        .max()
        .unwrap_or(0))
}

fn pk_star(
    tgd: &NestedTgd,
    part: PartId,
    k: usize,
    budget: usize,
    counter: &mut usize,
) -> Result<Vec<Tree>> {
    let child_parts = tgd.children(part);
    if child_parts.is_empty() {
        bump(counter, 1, budget)?;
        return Ok(vec![Tree {
            part,
            children: vec![],
        }]);
    }
    // Per child part: the list of possible (sorted) sibling groups, where a
    // group fixes a multiplicity 0..=k for every distinct subtree.
    let mut per_child: Vec<Vec<Vec<Tree>>> = Vec::with_capacity(child_parts.len());
    for &alpha in child_parts {
        let subtrees = pk_star(tgd, alpha, k, budget, counter)?;
        let mut groups: Vec<Vec<Tree>> = vec![vec![]];
        for t in &subtrees {
            let mut next = Vec::new();
            for g in &groups {
                for mult in 0..=k {
                    bump(counter, 1, budget)?;
                    let mut g2 = g.clone();
                    for _ in 0..mult {
                        g2.push(t.clone());
                    }
                    next.push(g2);
                }
            }
            groups = next;
        }
        per_child.push(groups);
    }
    // Cartesian product across child parts.
    let mut results: Vec<Vec<Tree>> = vec![vec![]];
    for groups in &per_child {
        let mut next = Vec::new();
        for r in &results {
            for g in groups {
                bump(counter, 1, budget)?;
                let mut r2 = r.clone();
                r2.extend(g.iter().cloned());
                next.push(r2);
            }
        }
        results = next;
    }
    Ok(results
        .into_iter()
        .map(|mut children| {
            children.sort();
            Tree { part, children }
        })
        .collect())
}

fn bump(counter: &mut usize, by: usize, budget: usize) -> Result<()> {
    *counter += by;
    if *counter > budget {
        Err(ReasoningError::PatternBudgetExceeded { budget })
    } else {
        Ok(())
    }
}

fn tree_to_pattern(tree: &Tree) -> Pattern {
    fn rec(t: &Tree, pattern: &mut Pattern, at: usize) {
        for c in &t.children {
            let id = pattern.add_child(at, c.part);
            rec(c, pattern, id);
        }
    }
    let mut p = Pattern::root_only(tree.part);
    rec(tree, &mut p, 0);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn running_tgd(syms: &mut SymbolTable) -> NestedTgd {
        parse_nested_tgd(
            syms,
            "forall x1 (S1(x1) -> exists y1 (\
               forall x2 (S2(x2) -> R2(y1,x2)) & \
               forall x3 (S3(x1,x3) -> (R3(y1,x3) & \
                 forall x4 (S4(x3,x4) -> exists y2 R4(y2,x4))))))",
        )
        .unwrap()
    }

    /// Figure 1 of the paper: σ has exactly 8 one-patterns.
    #[test]
    fn figure1_eight_one_patterns() {
        let mut syms = SymbolTable::new();
        let tgd = running_tgd(&mut syms);
        let ps = k_patterns(&tgd, 1, DEFAULT_PATTERN_BUDGET).unwrap();
        assert_eq!(ps.len(), 8);
        // All are valid 1-patterns, pairwise distinct.
        for p in &ps {
            assert!(p.is_valid_for(&tgd));
            assert!(p.max_clone_multiplicity() <= 1);
        }
        let keys: std::collections::BTreeSet<_> = ps.iter().map(Pattern::canonical_key).collect();
        assert_eq!(keys.len(), 8);
        // The largest 1-pattern has both (non-isomorphic) σ3-subtree
        // variants plus σ2: σ1(σ2 σ3 σ3(σ4)) with 5 nodes.
        assert_eq!(ps.iter().map(Pattern::len).max(), Some(5));
        // The singleton root pattern (p1 of the figure) is present.
        assert_eq!(ps.iter().map(Pattern::len).min(), Some(1));
    }

    #[test]
    fn two_patterns_for_single_nested_part() {
        // τ of Example 3.10 has two 1-patterns p', p''.
        let mut syms = SymbolTable::new();
        let tgd = parse_nested_tgd(
            &mut syms,
            "forall x1 (S1(x1) -> exists y (forall x2 S2(x2) -> R(x2,y)))",
        )
        .unwrap();
        let ps = k_patterns(&tgd, 1, DEFAULT_PATTERN_BUDGET).unwrap();
        assert_eq!(ps.len(), 2);
        // And exactly four 3-patterns {p', p'', p''_2, p''_3} (Example 3.10).
        let ps3 = k_patterns(&tgd, 3, DEFAULT_PATTERN_BUDGET).unwrap();
        assert_eq!(ps3.len(), 4);
        for p in &ps3 {
            assert!(p.max_clone_multiplicity() <= 3);
        }
    }

    #[test]
    fn st_tgd_has_single_pattern() {
        let mut syms = SymbolTable::new();
        let tgd: NestedTgd = parse_st_tgd(&mut syms, "S(x) -> exists y R(x,y)")
            .unwrap()
            .into();
        for k in 1..4 {
            let ps = k_patterns(&tgd, k, DEFAULT_PATTERN_BUDGET).unwrap();
            assert_eq!(ps.len(), 1);
            assert_eq!(ps[0].len(), 1);
        }
    }

    #[test]
    fn running_example_k_pattern_counts() {
        // Analytic count: (k+1) options for the σ2 group; the σ3 groups
        // come from (k+1)^2 multiplicity choices over the 2 distinct
        // σ3-subtrees... for k=1: 2 * 4 = 8; for k=2: 3 * (3*3) = 27·... =
        // (k+1)^(1) * (k+1)^(|P*_k(σ3)|) with |P*_k(σ3)| = k+1.
        let mut syms = SymbolTable::new();
        let tgd = running_tgd(&mut syms);
        for k in 1..=3usize {
            let expect = (k + 1) * (k + 1usize).pow((k + 1) as u32);
            let n = count_k_patterns(&tgd, k, 10_000_000).unwrap();
            assert_eq!(n, expect, "k = {k}");
        }
    }

    #[test]
    fn budget_is_enforced() {
        let mut syms = SymbolTable::new();
        let tgd = running_tgd(&mut syms);
        let err = k_patterns(&tgd, 4, 50).unwrap_err();
        assert!(matches!(
            err,
            ReasoningError::PatternBudgetExceeded { budget: 50 }
        ));
    }

    #[test]
    fn max_pattern_size_grows_with_k() {
        let mut syms = SymbolTable::new();
        let tgd = running_tgd(&mut syms);
        let s1 = max_k_pattern_size(&tgd, 1, DEFAULT_PATTERN_BUDGET).unwrap();
        let s2 = max_k_pattern_size(&tgd, 2, 10_000_000).unwrap();
        assert_eq!(s1, 5); // σ1(σ2 σ3 σ3(σ4))
        assert!(s2 > s1);
    }
}
