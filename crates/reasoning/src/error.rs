//! Errors raised by the reasoning procedures.

use std::fmt;

/// Result alias for reasoning operations.
pub type Result<T> = std::result::Result<T, ReasoningError>;

/// Errors raised by the decision procedures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReasoningError {
    /// k-pattern enumeration exceeded the configured budget. The number of
    /// k-patterns is non-elementary in the nesting depth of the tgd
    /// (paper, end of Section 3), so deep tgds need an explicit budget.
    PatternBudgetExceeded {
        /// The configured budget.
        budget: usize,
    },
    /// A structural precondition failed (e.g. a GLAV witness could not be
    /// verified within limits).
    Failed(String),
    /// A core-layer error.
    Core(ndl_core::error::CoreError),
}

impl fmt::Display for ReasoningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReasoningError::PatternBudgetExceeded { budget } => {
                write!(
                    f,
                    "k-pattern enumeration exceeded the budget of {budget} patterns"
                )
            }
            ReasoningError::Failed(m) => write!(f, "reasoning failed: {m}"),
            ReasoningError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl std::error::Error for ReasoningError {}

impl From<ndl_core::error::CoreError> for ReasoningError {
    fn from(e: ndl_core::error::CoreError) -> Self {
        ReasoningError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_budget() {
        let e = ReasoningError::PatternBudgetExceeded { budget: 7 };
        assert!(e.to_string().contains('7'));
    }
}
