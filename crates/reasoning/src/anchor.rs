//! Bounded anchors (paper, Definitions 4.6/4.7 and Theorem 4.9).
//!
//! A mapping has a *bounded anchor* witnessed by `a` if for every source
//! instance `I` and connected `J ⊆ core(chase(I, M))` there are a source
//! `I'` with `|I'| ≤ a·|J|` and a connected `J' ⊆ core(chase(I', M))` with
//! `|J'| ≥ |J|`. Theorem 4.9: nested GLAV mappings have *effective*
//! bounded anchor, and — as Example 4.8 warns — `I'` cannot in general be
//! found among the subinstances of `I`; the proof instead builds it as the
//! canonical instance of a pattern obtained by *cloning*.
//!
//! [`anchor_for_block`] implements that construction: locate the chase
//! tree producing the block of `J`, take its pattern, rebuild the
//! (legal) canonical instance, and clone subtrees until the core block is
//! at least as large as `J`. The returned [`AnchorWitness`] carries both
//! instances and is checked against Definition 4.6 by the caller-supplied
//! bound (see [`effective_anchor_bound`]).

use crate::canonical::{canonical_instances, legalize};
use crate::error::{ReasoningError, Result};
use crate::fblock::clone_bound;
use crate::pattern::Pattern;
use ndl_chase::{chase_nested, NullFactory, Prepared};
use ndl_core::prelude::*;
use ndl_hom::core_and_blocks;

/// The anchor constructed for one connected target fragment.
#[derive(Clone, Debug)]
pub struct AnchorWitness {
    /// The small source instance `I'`.
    pub source: Instance,
    /// A connected `J' ⊆ core(chase(I', M))` with `|J'| ≥ |J|`.
    pub block: Instance,
    /// The pattern whose canonical instance realizes `I'`.
    pub pattern: Pattern,
    /// Which tgd of the mapping the pattern belongs to.
    pub tgd_idx: usize,
}

/// An effective witness `a(M)` for Definition 4.7 under which our
/// construction stays within `|I'| ≤ a·|J|`: each pattern node contributes
/// at most `max_body_atoms` source atoms, a block fact forces at most one
/// node plus its ancestors (≤ depth), and cloning overshoots by at most
/// the clone bound — giving `a = max_body_atoms · depth · (k + 1)`.
pub fn effective_anchor_bound(m: &NestedMapping, syms: &mut SymbolTable) -> usize {
    let max_body_atoms = m
        .tgds
        .iter()
        .flat_map(|t| t.parts().iter().map(|p| p.body.len()))
        .max()
        .unwrap_or(1);
    let depth = m.tgds.iter().map(NestedTgd::depth).max().unwrap_or(1);
    let k = clone_bound(m, syms);
    max_body_atoms * depth * (k + 1)
}

/// Builds an anchor for the f-block of `core(chase(source, M))` containing
/// the null `null` (Theorem 4.9's construction). Returns `None` when the
/// null does not survive into the core.
pub fn anchor_for_block(
    m: &NestedMapping,
    source: &Instance,
    null: NullId,
    syms: &mut SymbolTable,
) -> Result<Option<AnchorWitness>> {
    let prepared = Prepared::mapping(m, syms);
    let mut nulls = NullFactory::new();
    let res = chase_nested(source, &prepared, &mut nulls);
    let (_core, blocks) = core_and_blocks(&res.target);
    let Some(block) = blocks.into_iter().find(|b| b.nulls().contains(&null)) else {
        return Ok(None);
    };
    // Locate the chase tree that produced this null.
    let Some((tree_root, tgd_idx)) = res
        .forest
        .roots
        .iter()
        .map(|&r| (r, res.forest.nodes[r].tgd_idx))
        .find(|&(r, _)| res.forest.tree_facts(r).nulls().contains(&null))
    else {
        return Err(ReasoningError::Failed(
            "core null not produced by any chase tree".into(),
        ));
    };
    // The pattern of that chase tree (the over-estimation I_b of the proof).
    let base = Pattern::of_chase_tree(&res.forest, tree_root);
    let target_size = block.len();
    // Grow by cloning until the anchored core block is big enough. The
    // proof clones a single repeating subtree; trying every node in turn
    // is a safe superset.
    let mut pattern = base.clone();
    let info = SkolemInfo::for_nested(&m.tgds[tgd_idx], syms);
    for _round in 0..=clone_bound(m, syms) {
        let mut cnulls = NullFactory::new();
        let pair = canonical_instances(&m.tgds[tgd_idx], &info, &pattern, syms, &mut cnulls);
        let legal = legalize(&pair, &m.source_egds, &mut cnulls);
        let mut chase_nulls = NullFactory::new();
        let chased = chase_nested(&legal.source, &prepared, &mut chase_nulls).target;
        let (_ccore, cblocks) = core_and_blocks(&chased);
        if let Some(big) = cblocks.into_iter().max_by_key(Instance::len) {
            if big.len() >= target_size {
                return Ok(Some(AnchorWitness {
                    source: legal.source,
                    block: big,
                    pattern,
                    tgd_idx,
                }));
            }
        }
        // Clone the subtree with the most siblings of equal shape (the
        // repeating fragment); fall back to the first non-root node.
        if pattern.len() < 2 {
            break;
        }
        let node = (1..pattern.len())
            .max_by_key(|&n| pattern.subtree(n).len())
            .unwrap_or(1);
        pattern.clone_subtree(node);
    }
    Err(ReasoningError::Failed(format!(
        "anchor construction did not reach block size {target_size}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndl_hom::{core_of, f_blocks};

    /// The classic unbounded tgd: anchors exist for arbitrarily large
    /// blocks, with |I'| proportional to the block, not to the original
    /// (possibly huge) source.
    #[test]
    fn anchor_scales_with_block_not_source() {
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(
            &mut syms,
            &["forall x1 (S1(x1) -> exists y (forall x2 (S2(x2) -> R(y,x2))))"],
            &[],
        )
        .unwrap();
        // A big source: 1 S1-atom, 8 S2-atoms, plus noise S1 atoms.
        let s1 = syms.rel("S1");
        let s2 = syms.rel("S2");
        let mut source = Instance::new();
        for i in 0..3 {
            source.insert(Fact::new(
                s1,
                vec![Value::Const(syms.constant(&format!("seed{i}")))],
            ));
        }
        for i in 0..8 {
            source.insert(Fact::new(
                s2,
                vec![Value::Const(syms.constant(&format!("m{i}")))],
            ));
        }
        // Chase once to find a core null.
        let prepared = Prepared::mapping(&m, &mut syms);
        let mut nulls = NullFactory::new();
        let res = chase_nested(&source, &prepared, &mut nulls);
        let core = core_of(&res.target);
        let null = core.nulls().into_iter().next().unwrap();
        let block_size = f_blocks(&core)
            .into_iter()
            .find(|b| b.nulls().contains(&null))
            .unwrap()
            .len();
        let witness = anchor_for_block(&m, &source, null, &mut syms)
            .unwrap()
            .expect("null survives into the core");
        assert!(witness.block.len() >= block_size);
        let a = effective_anchor_bound(&m, &mut syms);
        assert!(
            witness.source.len() <= a * witness.block.len(),
            "|I'| = {} must be ≤ a·|J| = {}·{}",
            witness.source.len(),
            a,
            witness.block.len()
        );
    }

    /// For a GLAV mapping the chase-tree pattern itself is already the
    /// anchor (no cloning needed).
    #[test]
    fn glav_anchor_is_immediate() {
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(&mut syms, &["S(x,y) -> exists z (R(x,z) & R(z,y))"], &[])
            .unwrap();
        let s = syms.rel("S");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let source = Instance::from_facts([Fact::new(s, vec![a, b])]);
        let prepared = Prepared::mapping(&m, &mut syms);
        let mut nulls = NullFactory::new();
        let res = chase_nested(&source, &prepared, &mut nulls);
        let null = res.target.nulls().into_iter().next().unwrap();
        let w = anchor_for_block(&m, &source, null, &mut syms)
            .unwrap()
            .expect("anchor exists");
        assert_eq!(w.pattern.len(), 1);
        assert_eq!(w.block.len(), 2);
        assert_eq!(w.source.len(), 1);
    }

    /// Nulls that collapse in the core have no anchored block.
    #[test]
    fn collapsed_null_yields_none() {
        let mut syms = SymbolTable::new();
        // R(x, z) with z unused elsewhere collapses onto the ground fact
        // R(x, x) produced by the second tgd... use: S(x) -> exists z R(x,z)
        // and S(x) -> R(x,x): the null folds onto the constant.
        let m = NestedMapping::parse(
            &mut syms,
            &["S(x) -> exists z R(x,z)", "S(x) -> R(x,x)"],
            &[],
        )
        .unwrap();
        let s = syms.rel("S");
        let a = Value::Const(syms.constant("a"));
        let source = Instance::from_facts([Fact::new(s, vec![a])]);
        let prepared = Prepared::mapping(&m, &mut syms);
        let mut nulls = NullFactory::new();
        let res = chase_nested(&source, &prepared, &mut nulls);
        let null = res.target.nulls().into_iter().next().unwrap();
        let w = anchor_for_block(&m, &source, null, &mut syms).unwrap();
        assert!(w.is_none());
    }

    #[test]
    fn effective_bound_is_positive_and_monotone_in_depth() {
        let mut syms = SymbolTable::new();
        let shallow = NestedMapping::parse(&mut syms, &["S(x) -> exists z R(x,z)"], &[]).unwrap();
        let deep = NestedMapping::parse(
            &mut syms,
            &["forall x1 (S1(x1) -> exists y (forall x2 (S2(x2) -> T(y,x2))))"],
            &[],
        )
        .unwrap();
        let a1 = effective_anchor_bound(&shallow, &mut syms);
        let a2 = effective_anchor_bound(&deep, &mut syms);
        assert!(a1 >= 1);
        assert!(a2 > a1);
    }
}
