//! Property tests pinning the indexed/incremental engine to its spec and to
//! the preserved scan engine (`ndl_hom::scan`) on seed-generated random
//! instances with nulls.
//!
//! Cores are unique only up to isomorphism, so the two `core_of`
//! implementations are compared structurally (size, null count, and the
//! defining retract property against the input), not for equality.

use ndl_core::prelude::*;
use ndl_hom::scan::{core_of_scan, homomorphic_scan, is_core_scan};
use ndl_hom::{core_of, hom_equivalent, homomorphic, is_core, verify_core};
use proptest::prelude::*;
use rand::{Rng, SeedableRng, StdRng};

/// A random instance over a binary and a ternary relation, mixing
/// constants and nulls; small enough that the scan engine stays fast.
fn random_instance(seed: u64, facts: usize, domain: usize, nulls: usize) -> Instance {
    let mut syms = SymbolTable::new();
    let r = syms.rel("R");
    let q = syms.rel("Q");
    let mut rng = StdRng::seed_from_u64(seed);
    let pool: Vec<Value> = (0..domain.max(1))
        .map(|i| Value::Const(syms.constant(&format!("c{i}"))))
        .chain((0..nulls).map(|i| Value::Null(NullId(i as u32))))
        .collect();
    let mut inst = Instance::new();
    for _ in 0..facts {
        let (rel, arity) = if rng.gen_range(0..3usize) < 2 {
            (r, 2)
        } else {
            (q, 3)
        };
        let args: Vec<Value> = (0..arity)
            .map(|_| pool[rng.gen_range(0..pool.len())])
            .collect();
        inst.insert(Fact::new(rel, args));
    }
    inst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn core_is_idempotent(seed in 0u64..1_000_000, facts in 1usize..14, nulls in 0usize..6) {
        let j = random_instance(seed, facts, 5, nulls);
        let c = core_of(&j);
        prop_assert_eq!(core_of(&c), c);
    }

    #[test]
    fn core_verifies_against_input(seed in 0u64..1_000_000, facts in 1usize..14, nulls in 0usize..6) {
        let j = random_instance(seed, facts, 5, nulls);
        let c = core_of(&j);
        prop_assert!(verify_core(&c, &j));
    }

    #[test]
    fn indexed_homomorphic_agrees_with_scan(
        seed in 0u64..1_000_000,
        f1 in 1usize..10,
        f2 in 1usize..14,
        nulls in 0usize..6,
    ) {
        let j1 = random_instance(seed, f1, 4, nulls);
        let j2 = random_instance(seed.wrapping_add(1), f2, 4, nulls);
        prop_assert_eq!(homomorphic(&j1, &j2), homomorphic_scan(&j1, &j2));
        prop_assert_eq!(homomorphic(&j2, &j1), homomorphic_scan(&j2, &j1));
    }

    #[test]
    fn core_engines_agree_structurally(seed in 0u64..1_000_000, facts in 1usize..12, nulls in 0usize..6) {
        let j = random_instance(seed, facts, 5, nulls);
        let a = core_of(&j);
        let b = core_of_scan(&j);
        // Cores are unique up to isomorphism.
        prop_assert_eq!(a.len(), b.len());
        prop_assert_eq!(a.nulls().len(), b.nulls().len());
        prop_assert!(hom_equivalent(&a, &b));
        prop_assert!(verify_core(&a, &j));
        prop_assert!(verify_core(&b, &j));
    }

    #[test]
    fn is_core_agrees_with_scan(seed in 0u64..1_000_000, facts in 1usize..12, nulls in 0usize..6) {
        let j = random_instance(seed, facts, 5, nulls);
        prop_assert_eq!(is_core(&j), is_core_scan(&j));
        prop_assert!(is_core(&core_of(&j)));
    }
}
