//! Fact blocks (f-blocks) of a target instance: the connected components of
//! the Gaifman graph of facts (paper, Section 2), and the structural
//! measures built on them — **f-block size** and **f-degree** (Section 4).

use crate::graph::FactGraph;
use ndl_core::prelude::*;
use std::collections::BTreeSet;

/// The f-blocks of `inst`: connected components of its fact graph, as
/// subinstances. Ground facts form singleton blocks.
pub fn f_blocks(inst: &Instance) -> Vec<Instance> {
    let g = FactGraph::of(inst);
    g.components()
        .into_iter()
        .map(|comp| comp.into_iter().map(|i| g.facts[i].to_fact()).collect())
        .collect()
}

/// The f-blocks of `inst` that contain at least one null — [`f_blocks`]
/// minus the singleton ground blocks, in the same relative order.
///
/// Ground facts are inert in every block-local search (they form singleton
/// blocks that trivially map to themselves and hold no null to retract),
/// so the core engine decomposes through this instead of materializing a
/// singleton [`Instance`] per ground fact of a large, mostly-ground target.
pub fn null_blocks(inst: &Instance) -> Vec<Instance> {
    null_blocks_with_ground(inst, &BTreeSet::new())
}

/// [`null_blocks`] with a set of relations externally certified null-free
/// — e.g. the `ground` set of a verified dataflow certificate (see
/// `ndl-chase`'s `DataflowCert`). Facts of those relations are dismissed
/// by a relation-id lookup instead of an argument scan, so on large,
/// mostly-ground targets the union-find only ever touches facts that can
/// carry nulls. Output is identical to [`null_blocks`] whenever the set
/// is truthful; a lying set is caught by a debug assertion.
pub fn null_blocks_with_ground(inst: &Instance, ground: &BTreeSet<RelId>) -> Vec<Instance> {
    // Dense mask: the ground probe runs once per fact, so it must not cost
    // a `BTreeSet` walk — that would eat the savings on wide relations.
    let mask_len = ground.iter().map(|r| r.index() + 1).max().unwrap_or(0);
    let mut ground_mask = vec![false; mask_len];
    for r in ground {
        ground_mask[r.index()] = true;
    }
    let facts: Vec<FactRef<'_>> = inst
        .facts()
        .filter(|f| {
            if f.rel.index() < mask_len && ground_mask[f.rel.index()] {
                debug_assert!(
                    f.args.iter().all(|v| !matches!(v, Value::Null(_))),
                    "relation {:?} certified ground but carries a null",
                    f.rel
                );
                return false;
            }
            f.args.iter().any(|v| matches!(v, Value::Null(_)))
        })
        .collect();
    // Union-find over the null facts, merging through each null's first
    // carrier.
    let mut parent: Vec<usize> = (0..facts.len()).collect();
    fn root(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut carrier: FxHashMap<NullId, usize> = FxHashMap::default();
    for (i, f) in facts.iter().enumerate() {
        for &v in f.args {
            if let Value::Null(n) = v {
                match carrier.get(&n) {
                    Some(&j) => {
                        let (a, b) = (root(&mut parent, i), root(&mut parent, j));
                        parent[a.max(b)] = a.min(b);
                    }
                    None => {
                        carrier.insert(n, i);
                    }
                }
            }
        }
    }
    // Emit components ordered by smallest member (roots are minimal, and
    // facts are visited in the instance's sorted order).
    let mut block_of_root: FxHashMap<usize, usize> = FxHashMap::default();
    let mut blocks: Vec<Instance> = Vec::new();
    for (i, f) in facts.iter().enumerate() {
        let r = root(&mut parent, i);
        let b = *block_of_root.entry(r).or_insert_with(|| {
            blocks.push(Instance::new());
            blocks.len() - 1
        });
        blocks[b].insert_tuple(f.rel, f.args);
    }
    blocks
}

/// The f-block size of `inst`: the maximum cardinality of its f-blocks
/// (0 for the empty instance).
pub fn f_block_size(inst: &Instance) -> usize {
    let g = FactGraph::of(inst);
    g.components()
        .into_iter()
        .map(|c| c.len())
        .max()
        .unwrap_or(0)
}

/// The f-degree of `inst`: the maximum degree of its fact graph
/// (Section 4.2). The degree of a fact is the number of facts it shares a
/// null with.
pub fn f_degree(inst: &Instance) -> usize {
    FactGraph::of(inst).max_degree()
}

/// The f-block of `inst` containing the null `n`, if any.
pub fn block_of_null(inst: &Instance, n: NullId) -> Option<Instance> {
    f_blocks(inst).into_iter().find(|b| b.nulls().contains(&n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn null(i: u32) -> Value {
        Value::Null(NullId(i))
    }

    #[test]
    fn blocks_partition_facts() {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        let a = Value::Const(syms.constant("a"));
        let inst = Instance::from_facts([
            Fact::new(r, vec![null(0), null(1)]),
            Fact::new(r, vec![null(1), null(2)]),
            Fact::new(r, vec![null(5), a]),
            Fact::new(r, vec![a, a]),
        ]);
        let blocks = f_blocks(&inst);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks.iter().map(Instance::len).sum::<usize>(), inst.len());
        assert_eq!(f_block_size(&inst), 2);
    }

    #[test]
    fn degree_counts_sharing_facts() {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        // Star: three facts all sharing null 0.
        let inst = Instance::from_facts([
            Fact::new(r, vec![null(0), null(1)]),
            Fact::new(r, vec![null(0), null(2)]),
            Fact::new(r, vec![null(0), null(3)]),
        ]);
        assert_eq!(f_degree(&inst), 2);
        assert_eq!(f_block_size(&inst), 3);
    }

    #[test]
    fn block_of_null_finds_component() {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        let inst = Instance::from_facts([
            Fact::new(r, vec![null(0), null(1)]),
            Fact::new(r, vec![null(7), null(8)]),
        ]);
        let b = block_of_null(&inst, NullId(7)).unwrap();
        assert_eq!(b.len(), 1);
        assert!(b.nulls().contains(&NullId(8)));
        assert!(block_of_null(&inst, NullId(99)).is_none());
    }

    #[test]
    fn ground_hint_leaves_blocks_unchanged() {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        let g = syms.rel("G");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let mut inst = Instance::from_facts([
            Fact::new(r, vec![null(0), null(1)]),
            Fact::new(r, vec![null(1), null(2)]),
            Fact::new(r, vec![null(5), a]),
        ]);
        // A large certified-ground relation the scan should dismiss by id.
        for i in 0..50 {
            inst.insert(Fact::new(
                g,
                vec![a, Value::Const(syms.constant(&format!("c{i}")))],
            ));
        }
        inst.insert(Fact::new(r, vec![a, b]));
        let hinted = null_blocks_with_ground(&inst, &BTreeSet::from([g]));
        assert_eq!(hinted, null_blocks(&inst));
        assert_eq!(hinted.len(), 2);
    }

    #[test]
    fn empty_instance_measures() {
        let inst = Instance::new();
        assert!(f_blocks(&inst).is_empty());
        assert_eq!(f_block_size(&inst), 0);
        assert_eq!(f_degree(&inst), 0);
    }
}
