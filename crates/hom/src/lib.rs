//! # ndl-hom
//!
//! Homomorphisms, cores and Gaifman-graph structure for target instances,
//! as used throughout *Nested Dependencies: Structure and Reasoning*
//! (PODS 2014):
//!
//! - [`hom`] — backtracking homomorphism search (constants rigid), with
//!   per-f-block decomposition and constraint hooks;
//! - [`core`] — core computation by iterated proper retractions;
//! - [`graph`] — the Gaifman graph of facts and the Gaifman graph of nulls;
//! - [`blocks`] — f-blocks, f-block size and f-degree (Section 4);
//! - [`paths`] — longest simple paths in the null graph (path length,
//!   Theorem 4.16).

#![warn(missing_docs)]

pub mod blocks;
pub mod core;
pub mod graph;
pub mod hom;
pub mod paths;

pub use blocks::{block_of_null, f_block_size, f_blocks, f_degree};
pub use core::{core_of, is_core, verify_core};
pub use graph::{FactGraph, IncidenceGraph, NullGraph};
pub use hom::{
    apply, apply_value, find_homomorphism, find_homomorphism_constrained, hom_equivalent,
    homomorphic, is_homomorphism, HomMap,
};
pub use paths::{
    longest_path_lower_bound, longest_simple_path, null_path_length, DEFAULT_NODE_LIMIT,
};
