//! # ndl-hom
//!
//! Homomorphisms, cores and Gaifman-graph structure for target instances,
//! as used throughout *Nested Dependencies: Structure and Reasoning*
//! (PODS 2014):
//!
//! - [`hom`] — indexed backtracking homomorphism search (constants rigid)
//!   over [`TupleIndex`](ndl_core::prelude::TupleIndex) posting lists, with
//!   per-f-block decomposition (searched in parallel on large targets),
//!   true minimum-remaining-candidates fact ordering, an undo-trail
//!   assignment map and constraint hooks;
//! - [`core`] — incremental core computation by iterated proper
//!   retractions over a dirty-null worklist, with parallel retraction
//!   probes;
//! - [`config`] — engine tuning knobs ([`HomConfig`]): worker-thread cap
//!   and sequential cutoff, with `NDL_HOM_THREADS` /
//!   `NDL_HOM_SEQUENTIAL_CUTOFF` environment overrides;
//! - [`scan`] — the pre-index scan engine, kept as a reference
//!   implementation for property tests and benchmark baselines;
//! - [`graph`] — the Gaifman graph of facts and the Gaifman graph of nulls;
//! - [`blocks`] — f-blocks, f-block size and f-degree (Section 4);
//! - [`paths`] — longest simple paths in the null graph (path length,
//!   Theorem 4.16).

#![warn(missing_docs)]

pub mod blocks;
pub mod config;
pub mod core;
pub mod graph;
pub mod hom;
pub mod paths;
pub mod scan;

pub use blocks::{
    block_of_null, f_block_size, f_blocks, f_degree, null_blocks, null_blocks_with_ground,
};
pub use config::HomConfig;
pub use core::{
    core_and_blocks, core_and_blocks_observed, core_f_block_size, core_of, core_of_assuming_ground,
    core_of_assuming_ground_observed, core_of_observed, is_core, is_core_observed, verify_core,
};
pub use graph::{FactGraph, IncidenceGraph, NullGraph};
pub use hom::{
    apply, apply_value, find_homomorphism, find_homomorphism_constrained, find_homomorphism_into,
    find_homomorphism_into_observed, hom_equivalent, homomorphic, is_homomorphism, Forbid, HomMap,
};
pub use paths::{
    longest_path_lower_bound, longest_simple_path, null_path_length, DEFAULT_NODE_LIMIT,
};
