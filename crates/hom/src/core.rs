//! Core computation (paper, Section 2): the core of an instance `J` is the
//! smallest subinstance homomorphically equivalent to `J`; it is unique up
//! to isomorphism [Hell & Nešetřil].
//!
//! Algorithm: iterated proper retractions. A proper retraction always
//! eliminates at least one null (an idempotent endomorphism whose image
//! contains every null fixes all of them and is the identity on facts), so
//! `J` is a core iff for every null `n` there is no endomorphism of `J`
//! avoiding `n`. Such an endomorphism exists iff the f-block of `n` maps
//! into `J` while avoiding `n` (nulls outside the block can stay fixed) —
//! so the search is block-local against the whole instance.

use crate::blocks::block_of_null;
use crate::hom::{apply_value, find_homomorphism_constrained, homomorphic, HomMap};
use ndl_core::prelude::*;

/// Computes the core of `inst`.
pub fn core_of(inst: &Instance) -> Instance {
    let mut current = inst.clone();
    'outer: loop {
        let nulls: Vec<NullId> = current.nulls().into_iter().collect();
        for n in nulls {
            if let Some(h) = endo_avoiding(&current, n) {
                current = current.map_values(&|v| apply_value(&h, v));
                debug_assert!(!current.nulls().contains(&n));
                continue 'outer;
            }
        }
        return current;
    }
}

/// Is `inst` a core (no proper retraction)?
pub fn is_core(inst: &Instance) -> bool {
    inst.nulls()
        .into_iter()
        .all(|n| endo_avoiding(inst, n).is_none())
}

/// Finds an endomorphism of `inst` whose image avoids the null `n`
/// (identity outside the f-block of `n`), if one exists.
fn endo_avoiding(inst: &Instance, n: NullId) -> Option<HomMap> {
    let block = block_of_null(inst, n)?;
    find_homomorphism_constrained(&block, inst, &HomMap::new(), &|_, v| v == Value::Null(n))
}

/// Checks the defining property: `core` is a subinstance of `inst`,
/// homomorphically equivalent to it, and itself a core.
pub fn verify_core(core: &Instance, inst: &Instance) -> bool {
    core.is_subinstance_of(inst) && homomorphic(inst, core) && is_core(core)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn null(i: u32) -> Value {
        Value::Null(NullId(i))
    }

    fn rel() -> (SymbolTable, RelId) {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        (syms, r)
    }

    #[test]
    fn redundant_null_fact_is_folded() {
        let (mut syms, r) = rel();
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        // R(a,b) subsumes R(a,n0).
        let inst = Instance::from_facts([Fact::new(r, vec![a, b]), Fact::new(r, vec![a, null(0)])]);
        let c = core_of(&inst);
        assert_eq!(c.len(), 1);
        assert!(c.contains_tuple(r, &[a, b]));
        assert!(verify_core(&c, &inst));
    }

    #[test]
    fn directed_null_path_is_a_core() {
        let (_syms, r) = rel();
        let inst = Instance::from_facts([
            Fact::new(r, vec![null(0), null(1)]),
            Fact::new(r, vec![null(1), null(2)]),
            Fact::new(r, vec![null(2), null(3)]),
        ]);
        assert!(is_core(&inst));
        assert_eq!(core_of(&inst), inst);
    }

    #[test]
    fn path_with_loop_collapses_to_loop() {
        let (_syms, r) = rel();
        let inst = Instance::from_facts([
            Fact::new(r, vec![null(0), null(1)]),
            Fact::new(r, vec![null(1), null(2)]),
            Fact::new(r, vec![null(2), null(2)]),
        ]);
        let c = core_of(&inst);
        assert_eq!(c.len(), 1);
        assert_eq!(c.nulls().len(), 1);
        assert!(verify_core(&c, &inst));
    }

    #[test]
    fn odd_undirected_cycle_is_a_core() {
        // Example 4.8: core(chase(I_n, σ)) is the undirected n-cycle for
        // odd n.
        let (_syms, r) = rel();
        let mut inst = Instance::new();
        let n = 5u32;
        for i in 0..n {
            let j = (i + 1) % n;
            inst.insert(Fact::new(r, vec![null(i), null(j)]));
            inst.insert(Fact::new(r, vec![null(j), null(i)]));
        }
        assert!(is_core(&inst));
    }

    #[test]
    fn even_undirected_cycle_collapses_to_edge() {
        let (_syms, r) = rel();
        let mut inst = Instance::new();
        let n = 6u32;
        for i in 0..n {
            let j = (i + 1) % n;
            inst.insert(Fact::new(r, vec![null(i), null(j)]));
            inst.insert(Fact::new(r, vec![null(j), null(i)]));
        }
        let c = core_of(&inst);
        // A single undirected edge: 2 facts, 2 nulls.
        assert_eq!(c.len(), 2);
        assert_eq!(c.nulls().len(), 2);
        assert!(verify_core(&c, &inst));
    }

    #[test]
    fn cross_block_folding() {
        let (mut syms, r) = rel();
        let a = Value::Const(syms.constant("a"));
        // Block 1: R(a, n0); block 2: R(a, n1), R(n1, n1).
        // Block 1 folds into block 2 (n0 ↦ n1).
        let inst = Instance::from_facts([
            Fact::new(r, vec![a, null(0)]),
            Fact::new(r, vec![a, null(1)]),
            Fact::new(r, vec![null(1), null(1)]),
        ]);
        let c = core_of(&inst);
        assert_eq!(c.nulls().len(), 1);
        assert_eq!(c.len(), 2);
        assert!(verify_core(&c, &inst));
    }

    #[test]
    fn ground_instance_is_its_own_core() {
        let (mut syms, r) = rel();
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let inst = Instance::from_facts([Fact::new(r, vec![a, b]), Fact::new(r, vec![b, a])]);
        assert_eq!(core_of(&inst), inst);
        assert!(is_core(&inst));
    }

    #[test]
    fn empty_instance_core() {
        let inst = Instance::new();
        assert!(is_core(&inst));
        assert!(core_of(&inst).is_empty());
    }
}
