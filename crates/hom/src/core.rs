//! Core computation (paper, Section 2): the core of an instance `J` is the
//! smallest subinstance homomorphically equivalent to `J`; it is unique up
//! to isomorphism [Hell & Nešetřil].
//!
//! Algorithm: iterated proper retractions. A proper retraction always
//! eliminates at least one null (an idempotent endomorphism whose image
//! contains every null fixes all of them and is the identity on facts), so
//! `J` is a core iff for every null `n` there is no endomorphism of `J`
//! avoiding `n`. Such an endomorphism exists iff the f-block of `n` maps
//! into `J` while avoiding `n` (nulls outside the block can stay fixed) —
//! so the search is block-local against the whole instance.
//!
//! The engine is **incremental**: a retraction through `h` only removes
//! the facts of one f-block that leave the image `h(B)` — every other fact
//! is untouched. So the engine keeps one [`TupleIndex`] updated in place
//! across retractions and re-probes only *dirty* nulls: a null whose probe
//! failed stays failed while its block is unchanged and the instance only
//! shrinks (homomorphisms into a shrinking target never appear), so only
//! the surviving nulls of the retracted block ever need rechecking. Probes
//! for distinct nulls are independent and run on `std::thread::scope`
//! workers above the configured cutoff (see [`HomConfig`]); retractions
//! are applied smallest-null-first, so results are identical to the
//! sequential engine.

use crate::blocks::{null_blocks, null_blocks_with_ground};
use crate::config::HomConfig;
use crate::hom::{apply_value, homomorphic, solve_block, HomMap};
use ndl_core::prelude::*;
use ndl_obs::{HomObserver, NoopObserver};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Computes the core of `inst`.
pub fn core_of(inst: &Instance) -> Instance {
    core_of_observed(inst, &NoopObserver)
}

/// [`core_of`] reporting its work to a [`HomObserver`] (retraction probes,
/// block searches, backtracks, worker dispatches). With [`NoopObserver`]
/// this compiles to the uninstrumented engine.
pub fn core_of_observed<O: HomObserver>(inst: &Instance, obs: &O) -> Instance {
    CoreEngine::new(inst, &BTreeSet::new(), obs).run().0
}

/// [`core_of`] with a set of relations externally certified null-free
/// (e.g. the `ground` set of a verified dataflow certificate): the
/// engine's initial block scan dismisses their facts by relation-id
/// lookup instead of scanning every argument for nulls. The result is
/// identical to [`core_of`] — ground facts are inert in retraction either
/// way — but the setup cost on mostly-ground instances drops to the
/// null-carrying fringe.
pub fn core_of_assuming_ground(inst: &Instance, ground: &BTreeSet<RelId>) -> Instance {
    core_of_assuming_ground_observed(inst, ground, &NoopObserver)
}

/// [`core_of_assuming_ground`] reporting its work to a [`HomObserver`].
pub fn core_of_assuming_ground_observed<O: HomObserver>(
    inst: &Instance,
    ground: &BTreeSet<RelId>,
    obs: &O,
) -> Instance {
    CoreEngine::new(inst, ground, obs).run().0
}

/// Computes the core of `inst` together with its f-blocks, reusing the
/// engine's block bookkeeping instead of rebuilding the fact graph of the
/// result. The blocks equal `f_blocks(&core)` (same contents, same order).
pub fn core_and_blocks(inst: &Instance) -> (Instance, Vec<Instance>) {
    core_and_blocks_observed(inst, &NoopObserver)
}

/// [`core_and_blocks`] reporting its work to a [`HomObserver`].
pub fn core_and_blocks_observed<O: HomObserver>(
    inst: &Instance,
    obs: &O,
) -> (Instance, Vec<Instance>) {
    let (core, mut blocks) = CoreEngine::new(inst, &BTreeSet::new(), obs).run();
    // The engine tracks only null-carrying blocks (ground facts are inert
    // in retraction); reconstitute the singleton ground blocks that
    // `f_blocks` reports, then match its order (components by smallest
    // fact).
    for f in core.facts() {
        if f.args.iter().all(|v| matches!(v, Value::Const(_))) {
            blocks.push(Instance::from_facts([f.to_fact()]));
        }
    }
    blocks.sort_by_cached_key(|b| b.facts().next().expect("blocks are nonempty").to_fact());
    debug_assert_eq!(blocks.iter().map(Instance::len).sum::<usize>(), core.len());
    (core, blocks)
}

/// The f-block size of the core of `inst` (0 for the empty instance) —
/// the quantity the Section 4 boundedness ladders sample at every rung.
pub fn core_f_block_size(inst: &Instance) -> usize {
    core_and_blocks(inst)
        .1
        .iter()
        .map(Instance::len)
        .max()
        .unwrap_or(0)
}

/// Is `inst` a core (no proper retraction)? Probes all nulls, in parallel
/// above the configured cutoff.
pub fn is_core(inst: &Instance) -> bool {
    is_core_observed(inst, &NoopObserver)
}

/// [`is_core`] reporting its work to a [`HomObserver`].
pub fn is_core_observed<O: HomObserver>(inst: &Instance, obs: &O) -> bool {
    let index = TupleIndex::from_instance(inst);
    let blocks = null_blocks(inst);
    let block_of = null_block_map(&blocks);
    let nulls: Vec<NullId> = inst.nulls().into_iter().collect();
    let probe = |n: NullId| -> bool {
        // Does a retraction avoiding `n` exist?
        let retracted = endo_avoiding(&blocks[block_of[&n]], &index, n, obs).is_some();
        obs.retraction_probe(retracted);
        retracted
    };
    let workers = HomConfig::global().effective_threads(nulls.len(), index.len());
    if workers <= 1 {
        return !nulls.into_iter().any(probe);
    }
    obs.threads_dispatched(workers);
    let found = AtomicBool::new(false);
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                if found.load(Ordering::Relaxed) {
                    return;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&n) = nulls.get(i) else { return };
                if probe(n) {
                    found.store(true, Ordering::Relaxed);
                    return;
                }
            });
        }
    });
    !found.load(Ordering::Relaxed)
}

/// Checks the defining property: `core` is a subinstance of `inst`,
/// homomorphically equivalent to it, and itself a core.
pub fn verify_core(core: &Instance, inst: &Instance) -> bool {
    core.is_subinstance_of(inst) && homomorphic(inst, core) && is_core(core)
}

/// Finds an endomorphism retracting `block` into the indexed instance
/// while avoiding the null `n` (identity outside the block), if one
/// exists.
fn endo_avoiding<O: HomObserver>(
    block: &Instance,
    index: &TupleIndex,
    n: NullId,
    obs: &O,
) -> Option<HomMap> {
    let assignments = solve_block(
        block,
        index,
        &HomMap::new(),
        &|_, v| v == Value::Null(n),
        obs,
    )?;
    Some(assignments.into_iter().collect())
}

/// `null → index of its block` over a block list.
fn null_block_map(blocks: &[Instance]) -> FxHashMap<NullId, usize> {
    let mut map = FxHashMap::default();
    for (i, b) in blocks.iter().enumerate() {
        for n in b.nulls() {
            map.insert(n, i);
        }
    }
    map
}

/// The incremental retraction engine.
struct CoreEngine<'o, O: HomObserver> {
    /// Index of the current instance, updated in place on retraction.
    index: TupleIndex,
    /// Live blocks (`None` once retracted/split); grows as blocks split.
    blocks: Vec<Option<Instance>>,
    /// `null → blocks index` for live nulls.
    block_of: FxHashMap<NullId, usize>,
    /// Nulls whose retraction probe must (re)run, in ascending order.
    dirty: BTreeSet<NullId>,
    /// Event sink shared with worker threads.
    obs: &'o O,
}

impl<'o, O: HomObserver> CoreEngine<'o, O> {
    fn new(inst: &Instance, ground: &BTreeSet<RelId>, obs: &'o O) -> CoreEngine<'o, O> {
        let index = TupleIndex::from_instance(inst);
        let mut engine = CoreEngine {
            index,
            blocks: Vec::new(),
            block_of: FxHashMap::default(),
            dirty: BTreeSet::new(),
            obs,
        };
        for block in null_blocks_with_ground(inst, ground) {
            engine.add_block(block);
        }
        engine
    }

    /// Registers a block, marking its nulls dirty.
    fn add_block(&mut self, block: Instance) {
        let idx = self.blocks.len();
        for n in block.nulls() {
            self.block_of.insert(n, idx);
            self.dirty.insert(n);
        }
        self.blocks.push(Some(block));
    }

    /// Runs retractions to a fixpoint; returns the core and its surviving
    /// null-carrying blocks (unsorted — `core_and_blocks` adds the ground
    /// singletons and imposes the `f_blocks` order).
    fn run(mut self) -> (Instance, Vec<Instance>) {
        while let Some((n, h)) = self.find_retraction() {
            self.retract(n, &h);
        }
        let core = self.index.to_instance();
        let live: Vec<Instance> = self.blocks.into_iter().flatten().collect();
        (core, live)
    }

    /// Probes a retraction avoiding `n` against the current index.
    fn probe(&self, n: NullId) -> Option<HomMap> {
        let block = self.blocks[self.block_of[&n]].as_ref().expect("live block");
        let found = endo_avoiding(block, &self.index, n, self.obs);
        self.obs.retraction_probe(found.is_some());
        found
    }

    /// Finds the smallest dirty null admitting a retraction, cleaning every
    /// probed-and-failed null along the way. Probes run in parallel chunks
    /// above the configured cutoff; the smallest-null-first retraction
    /// order (and hence the result) is independent of the worker count.
    fn find_retraction(&mut self) -> Option<(NullId, HomMap)> {
        let workers = HomConfig::global().effective_threads(self.dirty.len(), self.index.len());
        loop {
            let chunk: Vec<NullId> = self.dirty.iter().copied().take(workers.max(1)).collect();
            if chunk.is_empty() {
                return None;
            }
            if workers <= 1 {
                let n = chunk[0];
                match self.probe(n) {
                    Some(h) => return Some((n, h)),
                    None => {
                        self.dirty.remove(&n);
                        continue;
                    }
                }
            }
            // Parallel chunk: probe all, then commit the smallest success.
            // Failures are clean regardless of position — a failed probe
            // stays failed while the block is unchanged and the instance
            // shrinks; `retract` re-dirties any null whose block changes.
            self.obs.threads_dispatched(workers);
            let probes: Vec<OnceLock<Option<HomMap>>> =
                (0..chunk.len()).map(|_| OnceLock::new()).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&n) = chunk.get(i) else { return };
                        let _ = probes[i].set(self.probe(n));
                    });
                }
            });
            for (i, &n) in chunk.iter().enumerate() {
                match probes[i].get().expect("probed") {
                    Some(h) => return Some((n, h.clone())),
                    None => {
                        self.dirty.remove(&n);
                    }
                }
            }
        }
    }

    /// Applies the retraction `h` of the block of `n`: removes the block
    /// facts that leave the image `h(B)`, splits the survivors into their
    /// new sub-blocks and marks the surviving nulls dirty.
    fn retract(&mut self, n: NullId, h: &HomMap) {
        let idx = self.block_of[&n];
        let block = self.blocks[idx].take().expect("live block");
        let image: BTreeSet<Fact> = block
            .facts()
            .map(|f| {
                Fact::new(
                    f.rel,
                    f.args
                        .iter()
                        .map(|&v| apply_value(h, v))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let mut survivors = Instance::new();
        for f in block.facts() {
            if image.contains(&f.to_fact()) {
                survivors.insert_tuple(f.rel, f.args);
            } else {
                self.index.remove_tuple(f.rel, f.args);
            }
        }
        for m in block.nulls() {
            self.block_of.remove(&m);
            self.dirty.remove(&m);
        }
        for sub in null_blocks(&survivors) {
            debug_assert!(!sub.nulls().contains(&n), "retraction must drop {n:?}");
            self.add_block(sub);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn null(i: u32) -> Value {
        Value::Null(NullId(i))
    }

    fn rel() -> (SymbolTable, RelId) {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        (syms, r)
    }

    #[test]
    fn redundant_null_fact_is_folded() {
        let (mut syms, r) = rel();
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        // R(a,b) subsumes R(a,n0).
        let inst = Instance::from_facts([Fact::new(r, vec![a, b]), Fact::new(r, vec![a, null(0)])]);
        let c = core_of(&inst);
        assert_eq!(c.len(), 1);
        assert!(c.contains_tuple(r, &[a, b]));
        assert!(verify_core(&c, &inst));
    }

    #[test]
    fn directed_null_path_is_a_core() {
        let (_syms, r) = rel();
        let inst = Instance::from_facts([
            Fact::new(r, vec![null(0), null(1)]),
            Fact::new(r, vec![null(1), null(2)]),
            Fact::new(r, vec![null(2), null(3)]),
        ]);
        assert!(is_core(&inst));
        assert_eq!(core_of(&inst), inst);
    }

    #[test]
    fn path_with_loop_collapses_to_loop() {
        let (_syms, r) = rel();
        let inst = Instance::from_facts([
            Fact::new(r, vec![null(0), null(1)]),
            Fact::new(r, vec![null(1), null(2)]),
            Fact::new(r, vec![null(2), null(2)]),
        ]);
        let c = core_of(&inst);
        assert_eq!(c.len(), 1);
        assert_eq!(c.nulls().len(), 1);
        assert!(verify_core(&c, &inst));
    }

    #[test]
    fn odd_undirected_cycle_is_a_core() {
        // Example 4.8: core(chase(I_n, σ)) is the undirected n-cycle for
        // odd n.
        let (_syms, r) = rel();
        let mut inst = Instance::new();
        let n = 5u32;
        for i in 0..n {
            let j = (i + 1) % n;
            inst.insert(Fact::new(r, vec![null(i), null(j)]));
            inst.insert(Fact::new(r, vec![null(j), null(i)]));
        }
        assert!(is_core(&inst));
    }

    #[test]
    fn even_undirected_cycle_collapses_to_edge() {
        let (_syms, r) = rel();
        let mut inst = Instance::new();
        let n = 6u32;
        for i in 0..n {
            let j = (i + 1) % n;
            inst.insert(Fact::new(r, vec![null(i), null(j)]));
            inst.insert(Fact::new(r, vec![null(j), null(i)]));
        }
        let c = core_of(&inst);
        // A single undirected edge: 2 facts, 2 nulls.
        assert_eq!(c.len(), 2);
        assert_eq!(c.nulls().len(), 2);
        assert!(verify_core(&c, &inst));
    }

    #[test]
    fn cross_block_folding() {
        let (mut syms, r) = rel();
        let a = Value::Const(syms.constant("a"));
        // Block 1: R(a, n0); block 2: R(a, n1), R(n1, n1).
        // Block 1 folds into block 2 (n0 ↦ n1).
        let inst = Instance::from_facts([
            Fact::new(r, vec![a, null(0)]),
            Fact::new(r, vec![a, null(1)]),
            Fact::new(r, vec![null(1), null(1)]),
        ]);
        let c = core_of(&inst);
        assert_eq!(c.nulls().len(), 1);
        assert_eq!(c.len(), 2);
        assert!(verify_core(&c, &inst));
    }

    #[test]
    fn ground_instance_is_its_own_core() {
        let (mut syms, r) = rel();
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let inst = Instance::from_facts([Fact::new(r, vec![a, b]), Fact::new(r, vec![b, a])]);
        assert_eq!(core_of(&inst), inst);
        assert!(is_core(&inst));
    }

    #[test]
    fn empty_instance_core() {
        let inst = Instance::new();
        assert!(is_core(&inst));
        assert!(core_of(&inst).is_empty());
        let (c, blocks) = core_and_blocks(&inst);
        assert!(c.is_empty());
        assert!(blocks.is_empty());
    }

    #[test]
    fn core_and_blocks_matches_f_blocks() {
        let (mut syms, r) = rel();
        let a = Value::Const(syms.constant("a"));
        // Mixed shape: a folding even cycle, a redundant null fact, a
        // ground fact, and a core path.
        let mut inst = Instance::new();
        for i in 0..4u32 {
            let j = (i + 1) % 4;
            inst.insert(Fact::new(r, vec![null(i), null(j)]));
            inst.insert(Fact::new(r, vec![null(j), null(i)]));
        }
        inst.insert(Fact::new(r, vec![a, null(10)]));
        inst.insert(Fact::new(r, vec![a, a]));
        inst.insert(Fact::new(r, vec![null(20), null(21)]));
        inst.insert(Fact::new(r, vec![null(21), null(22)]));
        let (core, blocks) = core_and_blocks(&inst);
        assert_eq!(core, core_of(&inst));
        assert_eq!(blocks, crate::f_blocks(&core));
        assert_eq!(
            core_f_block_size(&inst),
            blocks.iter().map(Instance::len).max().unwrap()
        );
    }

    #[test]
    fn ground_hint_core_is_identical() {
        let (mut syms, r) = rel();
        let g = syms.rel("G");
        let a = Value::Const(syms.constant("a"));
        // A folding even cycle plus a redundant null fact, over a large
        // certified-ground relation the initial scan can dismiss by id.
        let mut inst = Instance::new();
        for i in 0..4u32 {
            let j = (i + 1) % 4;
            inst.insert(Fact::new(r, vec![null(i), null(j)]));
            inst.insert(Fact::new(r, vec![null(j), null(i)]));
        }
        inst.insert(Fact::new(r, vec![a, null(9)]));
        inst.insert(Fact::new(r, vec![a, a]));
        for i in 0..40 {
            inst.insert(Fact::new(
                g,
                vec![a, Value::Const(syms.constant(&format!("c{i}")))],
            ));
        }
        let hinted = core_of_assuming_ground(&inst, &BTreeSet::from([g]));
        assert_eq!(hinted, core_of(&inst));
        assert!(verify_core(&hinted, &inst));
        // An empty hint is exactly `core_of`.
        assert_eq!(core_of_assuming_ground(&inst, &BTreeSet::new()), hinted);
    }

    #[test]
    fn agrees_with_scan_engine_on_fixtures() {
        let (mut syms, r) = rel();
        let a = Value::Const(syms.constant("a"));
        let shapes = [
            Instance::from_facts([Fact::new(r, vec![a, null(0)]), Fact::new(r, vec![a, a])]),
            Instance::from_facts([
                Fact::new(r, vec![null(0), null(1)]),
                Fact::new(r, vec![null(1), null(2)]),
                Fact::new(r, vec![null(2), null(2)]),
            ]),
            {
                let mut even = Instance::new();
                for i in 0..6u32 {
                    let j = (i + 1) % 6;
                    even.insert(Fact::new(r, vec![null(i), null(j)]));
                    even.insert(Fact::new(r, vec![null(j), null(i)]));
                }
                even
            },
        ];
        for inst in &shapes {
            assert_eq!(core_of(inst), crate::scan::core_of_scan(inst), "{inst:?}");
            assert_eq!(is_core(inst), crate::scan::is_core_scan(inst));
        }
    }
}
