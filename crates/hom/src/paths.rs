//! Longest simple paths in the Gaifman graph of nulls — the **path
//! length** measure of Section 4.2 (Theorem 4.16: every nested GLAV
//! mapping has bounded path length).
//!
//! Longest-simple-path is NP-hard in general; the instances arising from
//! the paper's figures are small or highly structured, so an exact
//! branch-and-bound search with a node budget suffices. Callers needing a
//! guaranteed-cheap answer can use [`longest_path_lower_bound`].

use crate::graph::NullGraph;
use ndl_core::prelude::*;

/// Default node budget for the exact search.
pub const DEFAULT_NODE_LIMIT: usize = 64;

/// The length (number of edges) of the longest simple path in the null
/// graph of `inst`, computed exactly. Returns `None` when the graph
/// exceeds `node_limit` nodes (use a sweep or the lower bound instead).
pub fn null_path_length(inst: &Instance, node_limit: usize) -> Option<usize> {
    let g = NullGraph::of(inst);
    if g.len() > node_limit {
        return None;
    }
    Some(longest_simple_path(&g.adj))
}

/// Exact longest simple path (edge count) by DFS from every start node.
pub fn longest_simple_path(adj: &[Vec<usize>]) -> usize {
    let n = adj.len();
    if n == 0 {
        return 0;
    }
    let mut best = 0;
    let mut visited = vec![false; n];
    for start in 0..n {
        visited[start] = true;
        dfs(adj, start, 0, &mut visited, &mut best);
        visited[start] = false;
        if best == n - 1 {
            break; // Hamiltonian path found — cannot do better.
        }
    }
    best
}

fn dfs(adj: &[Vec<usize>], u: usize, len: usize, visited: &mut [bool], best: &mut usize) {
    if len > *best {
        *best = len;
    }
    if *best == adj.len() - 1 {
        return;
    }
    for &v in &adj[u] {
        if !visited[v] {
            visited[v] = true;
            dfs(adj, v, len + 1, visited, best);
            visited[v] = false;
        }
    }
}

/// A cheap lower bound on the longest simple path: the longest path found
/// by a double-BFS sweep from each component (exact on trees, a lower
/// bound elsewhere). Linear time; used for large sweeps where exact search
/// is infeasible.
pub fn longest_path_lower_bound(inst: &Instance) -> usize {
    let g = NullGraph::of(inst);
    let n = g.len();
    if n == 0 {
        return 0;
    }
    let mut seen = vec![false; n];
    let mut best = 0;
    for s in 0..n {
        if seen[s] {
            continue;
        }
        // Mark component and double-sweep.
        let comp = bfs_far(&g.adj, s, Some(&mut seen)).0;
        let (far, _) = bfs_far(&g.adj, comp, None);
        let (_, d) = bfs_far(&g.adj, far, None);
        best = best.max(d);
    }
    best
}

/// BFS returning the farthest node and its distance; optionally marks seen.
fn bfs_far(adj: &[Vec<usize>], start: usize, mut seen: Option<&mut [bool]>) -> (usize, usize) {
    let n = adj.len();
    let mut dist = vec![usize::MAX; n];
    dist[start] = 0;
    if let Some(s) = seen.as_deref_mut() {
        s[start] = true;
    }
    let mut queue = std::collections::VecDeque::from([start]);
    let mut far = (start, 0);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                if let Some(s) = seen.as_deref_mut() {
                    s[v] = true;
                }
                if dist[v] > far.1 {
                    far = (v, dist[v]);
                }
                queue.push_back(v);
            }
        }
    }
    far
}

#[cfg(test)]
mod tests {
    use super::*;

    fn null(i: u32) -> Value {
        Value::Null(NullId(i))
    }

    fn chain_instance(len: u32) -> Instance {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        let mut inst = Instance::new();
        for i in 0..len {
            inst.insert(Fact::new(r, vec![null(i), null(i + 1)]));
        }
        inst
    }

    #[test]
    fn path_graph_length() {
        let inst = chain_instance(4);
        assert_eq!(null_path_length(&inst, DEFAULT_NODE_LIMIT), Some(4));
        assert_eq!(longest_path_lower_bound(&inst), 4);
    }

    #[test]
    fn cycle_has_hamiltonian_minus_one() {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        let mut inst = Instance::new();
        let n = 6u32;
        for i in 0..n {
            inst.insert(Fact::new(r, vec![null(i), null((i + 1) % n)]));
        }
        assert_eq!(null_path_length(&inst, DEFAULT_NODE_LIMIT), Some(5));
        // Double-BFS underestimates on cycles but is a valid lower bound.
        assert!(longest_path_lower_bound(&inst) <= 5);
        assert!(longest_path_lower_bound(&inst) >= 3);
    }

    #[test]
    fn clique_path_covers_all_nodes() {
        let mut syms = SymbolTable::new();
        let r3 = syms.rel("R3");
        // Two overlapping 3-ary facts: nulls {0,1,2} and {2,3,4}.
        let inst = Instance::from_facts([
            Fact::new(r3, vec![null(0), null(1), null(2)]),
            Fact::new(r3, vec![null(2), null(3), null(4)]),
        ]);
        // 0-1-2-3-4 is a simple path: length 4.
        assert_eq!(null_path_length(&inst, DEFAULT_NODE_LIMIT), Some(4));
    }

    #[test]
    fn node_limit_is_respected() {
        let inst = chain_instance(100);
        assert_eq!(null_path_length(&inst, 50), None);
        assert_eq!(longest_path_lower_bound(&inst), 100);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(null_path_length(&Instance::new(), 10), Some(0));
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        let a = Value::Const(syms.constant("a"));
        let inst = Instance::from_facts([Fact::new(r, vec![null(0), a])]);
        assert_eq!(null_path_length(&inst, 10), Some(0));
    }

    #[test]
    fn star_longest_path_is_two() {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        let inst = Instance::from_facts([
            Fact::new(r, vec![null(0), null(1)]),
            Fact::new(r, vec![null(0), null(2)]),
            Fact::new(r, vec![null(0), null(3)]),
        ]);
        assert_eq!(null_path_length(&inst, DEFAULT_NODE_LIMIT), Some(2));
        assert_eq!(longest_path_lower_bound(&inst), 2);
    }
}
