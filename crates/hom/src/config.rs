//! Engine tuning knobs: worker-thread cap and the sequential cutoff below
//! which parallel dispatch is never worth its setup cost.
//!
//! The process-wide configuration is resolved once, on first use, from the
//! environment:
//!
//! - `NDL_HOM_THREADS` — maximum worker threads for per-block searches and
//!   per-null retraction probes (`1` forces the sequential paths; unset
//!   defaults to [`std::thread::available_parallelism`]);
//! - `NDL_HOM_SEQUENTIAL_CUTOFF` — minimum number of facts in the search
//!   target before threads are spawned (default
//!   [`HomConfig::DEFAULT_SEQUENTIAL_CUTOFF`]).
//!
//! Programmatic override: call [`HomConfig::set_global`] before any engine
//! entry point. See `docs/performance.md` for guidance.

use std::sync::OnceLock;

/// Tuning knobs of the homomorphism/core engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HomConfig {
    /// Maximum worker threads (1 = always sequential).
    pub threads: usize,
    /// Minimum total fact count before spawning worker threads.
    pub sequential_cutoff: usize,
}

static GLOBAL: OnceLock<HomConfig> = OnceLock::new();

impl Default for HomConfig {
    fn default() -> Self {
        HomConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            sequential_cutoff: Self::DEFAULT_SEQUENTIAL_CUTOFF,
        }
    }
}

impl HomConfig {
    /// Default sequential cutoff: below this many facts, thread spawn and
    /// join overhead (~10µs each) exceeds the search work saved.
    pub const DEFAULT_SEQUENTIAL_CUTOFF: usize = 512;

    /// The defaults with any `NDL_HOM_THREADS` / `NDL_HOM_SEQUENTIAL_CUTOFF`
    /// environment overrides applied. Unparsable or zero values fall back
    /// to the defaults **and report a one-time warning** through
    /// [`ndl_obs::warn_once`] — a typo'd override must not be silently
    /// ignored (front ends surface the warning, e.g. the `ndl` CLI on
    /// stderr).
    pub fn from_env() -> Self {
        Self::from_env_with(&|key| std::env::var(key).ok())
    }

    /// [`Self::from_env`] over an injected variable source — the testable
    /// entry point (process environment mutation is racy under the
    /// multi-threaded test harness).
    pub fn from_env_with(get: &dyn Fn(&str) -> Option<String>) -> Self {
        let mut cfg = HomConfig::default();
        if let Some(t) = parse_override("NDL_HOM_THREADS", get) {
            cfg.threads = t;
        }
        if let Some(c) = parse_override("NDL_HOM_SEQUENTIAL_CUTOFF", get) {
            cfg.sequential_cutoff = c;
        }
        cfg
    }

    /// The process-wide configuration (resolved from the environment on
    /// first use).
    pub fn global() -> HomConfig {
        *GLOBAL.get_or_init(HomConfig::from_env)
    }

    /// Installs `cfg` as the process-wide configuration. Returns `false`
    /// if a configuration was already resolved (first caller wins).
    pub fn set_global(cfg: HomConfig) -> bool {
        GLOBAL.set(cfg).is_ok()
    }

    /// How many workers to use for `work_items` independent searches over
    /// a target of `target_facts` facts: 1 below the cutoff, otherwise
    /// capped by the thread budget and the work available.
    pub fn effective_threads(&self, work_items: usize, target_facts: usize) -> usize {
        if target_facts < self.sequential_cutoff || work_items <= 1 {
            1
        } else {
            self.threads.min(work_items).max(1)
        }
    }
}

fn parse_override(key: &str, get: &dyn Fn(&str) -> Option<String>) -> Option<usize> {
    let raw = get(key)?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            ndl_obs::warn_once(
                key,
                format!("ignoring {key}={raw:?}: expected a positive integer, using the default"),
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_positive_threads() {
        let cfg = HomConfig::default();
        assert!(cfg.threads >= 1);
        assert_eq!(cfg.sequential_cutoff, HomConfig::DEFAULT_SEQUENTIAL_CUTOFF);
    }

    #[test]
    fn effective_threads_respects_cutoff_and_cap() {
        let cfg = HomConfig {
            threads: 4,
            sequential_cutoff: 100,
        };
        // Below the cutoff: sequential.
        assert_eq!(cfg.effective_threads(8, 99), 1);
        // Above: capped by both budget and work items.
        assert_eq!(cfg.effective_threads(8, 1000), 4);
        assert_eq!(cfg.effective_threads(2, 1000), 2);
        assert_eq!(cfg.effective_threads(0, 1000), 1);
        assert_eq!(cfg.effective_threads(1, 1000), 1);
    }

    #[test]
    fn env_overrides_apply_and_bad_values_warn() {
        // Valid overrides apply without noise.
        let good = HomConfig::from_env_with(&|key| match key {
            "NDL_HOM_THREADS" => Some("3".to_string()),
            "NDL_HOM_SEQUENTIAL_CUTOFF" => Some(" 64 ".to_string()),
            _ => None,
        });
        assert_eq!(good.threads, 3);
        assert_eq!(good.sequential_cutoff, 64);
        assert!(!ndl_obs::warnings()
            .iter()
            .any(|w| w.key == "NDL_HOM_SEQUENTIAL_CUTOFF"));

        // Unparsable and zero values fall back to the defaults — and are
        // reported, not swallowed.
        let bad = HomConfig::from_env_with(&|key| match key {
            "NDL_HOM_THREADS" => Some("lots".to_string()),
            "NDL_HOM_SEQUENTIAL_CUTOFF" => Some("0".to_string()),
            _ => None,
        });
        assert_eq!(bad, HomConfig::default());
        let warned: Vec<String> = ndl_obs::warnings().into_iter().map(|w| w.key).collect();
        assert!(warned.iter().any(|k| k == "NDL_HOM_THREADS"));
        assert!(warned.iter().any(|k| k == "NDL_HOM_SEQUENTIAL_CUTOFF"));
        let msg = ndl_obs::warnings()
            .into_iter()
            .find(|w| w.key == "NDL_HOM_THREADS")
            .unwrap()
            .message;
        assert!(msg.contains("\"lots\""), "{msg}");
        assert!(msg.contains("positive integer"), "{msg}");
    }

    #[test]
    fn global_is_stable() {
        let a = HomConfig::global();
        let b = HomConfig::global();
        assert_eq!(a, b);
        // A second install is rejected.
        assert!(!HomConfig::set_global(HomConfig {
            threads: 1,
            sequential_cutoff: 1,
        }));
    }
}
