//! Engine tuning knobs: worker-thread cap and the sequential cutoff below
//! which parallel dispatch is never worth its setup cost.
//!
//! The process-wide configuration is resolved once, on first use, from the
//! environment:
//!
//! - `NDL_HOM_THREADS` — maximum worker threads for per-block searches and
//!   per-null retraction probes (`1` forces the sequential paths; unset
//!   defaults to [`std::thread::available_parallelism`]);
//! - `NDL_HOM_SEQUENTIAL_CUTOFF` — minimum number of facts in the search
//!   target before threads are spawned (default
//!   [`HomConfig::DEFAULT_SEQUENTIAL_CUTOFF`]).
//!
//! Programmatic override: call [`HomConfig::set_global`] before any engine
//! entry point. See `docs/performance.md` for guidance.

use std::sync::OnceLock;

/// Tuning knobs of the homomorphism/core engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HomConfig {
    /// Maximum worker threads (1 = always sequential).
    pub threads: usize,
    /// Minimum total fact count before spawning worker threads.
    pub sequential_cutoff: usize,
}

static GLOBAL: OnceLock<HomConfig> = OnceLock::new();

impl Default for HomConfig {
    fn default() -> Self {
        HomConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            sequential_cutoff: Self::DEFAULT_SEQUENTIAL_CUTOFF,
        }
    }
}

impl HomConfig {
    /// Default sequential cutoff: below this many facts, thread spawn and
    /// join overhead (~10µs each) exceeds the search work saved.
    pub const DEFAULT_SEQUENTIAL_CUTOFF: usize = 512;

    /// The defaults with any `NDL_HOM_THREADS` / `NDL_HOM_SEQUENTIAL_CUTOFF`
    /// environment overrides applied. Unparsable or zero values fall back
    /// to the defaults.
    pub fn from_env() -> Self {
        let mut cfg = HomConfig::default();
        if let Some(t) = parse_env("NDL_HOM_THREADS") {
            cfg.threads = t;
        }
        if let Some(c) = parse_env("NDL_HOM_SEQUENTIAL_CUTOFF") {
            cfg.sequential_cutoff = c;
        }
        cfg
    }

    /// The process-wide configuration (resolved from the environment on
    /// first use).
    pub fn global() -> HomConfig {
        *GLOBAL.get_or_init(HomConfig::from_env)
    }

    /// Installs `cfg` as the process-wide configuration. Returns `false`
    /// if a configuration was already resolved (first caller wins).
    pub fn set_global(cfg: HomConfig) -> bool {
        GLOBAL.set(cfg).is_ok()
    }

    /// How many workers to use for `work_items` independent searches over
    /// a target of `target_facts` facts: 1 below the cutoff, otherwise
    /// capped by the thread budget and the work available.
    pub fn effective_threads(&self, work_items: usize, target_facts: usize) -> usize {
        if target_facts < self.sequential_cutoff || work_items <= 1 {
            1
        } else {
            self.threads.min(work_items).max(1)
        }
    }
}

fn parse_env(key: &str) -> Option<usize> {
    std::env::var(key)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_positive_threads() {
        let cfg = HomConfig::default();
        assert!(cfg.threads >= 1);
        assert_eq!(cfg.sequential_cutoff, HomConfig::DEFAULT_SEQUENTIAL_CUTOFF);
    }

    #[test]
    fn effective_threads_respects_cutoff_and_cap() {
        let cfg = HomConfig {
            threads: 4,
            sequential_cutoff: 100,
        };
        // Below the cutoff: sequential.
        assert_eq!(cfg.effective_threads(8, 99), 1);
        // Above: capped by both budget and work items.
        assert_eq!(cfg.effective_threads(8, 1000), 4);
        assert_eq!(cfg.effective_threads(2, 1000), 2);
        assert_eq!(cfg.effective_threads(0, 1000), 1);
        assert_eq!(cfg.effective_threads(1, 1000), 1);
    }

    #[test]
    fn global_is_stable() {
        let a = HomConfig::global();
        let b = HomConfig::global();
        assert_eq!(a, b);
        // A second install is rejected.
        assert!(!HomConfig::set_global(HomConfig {
            threads: 1,
            sequential_cutoff: 1,
        }));
    }
}
