//! Homomorphism search between target instances.
//!
//! A homomorphism `h : J1 → J2` is the identity on constants and maps every
//! fact of `J1` to a fact of `J2` (paper, Section 2). Since distinct
//! f-blocks share no nulls, `J1 → J2` holds iff every f-block of `J1` maps
//! into `J2` independently — the decomposition used both for correctness in
//! the IMPLIES procedure and as the main performance lever here.

use crate::blocks::f_blocks;
use ndl_core::prelude::*;
use std::collections::BTreeMap;

/// A homomorphism represented by its action on nulls (identity on
/// constants).
pub type HomMap = BTreeMap<NullId, Value>;

/// Applies a homomorphism to a value.
pub fn apply_value(h: &HomMap, v: Value) -> Value {
    match v {
        Value::Const(_) => v,
        Value::Null(n) => h.get(&n).copied().unwrap_or(v),
    }
}

/// Applies a homomorphism to an instance, producing its image `h(J)`.
pub fn apply(h: &HomMap, inst: &Instance) -> Instance {
    inst.map_values(&|v| apply_value(h, v))
}

/// Checks that `h` is a homomorphism from `from` into `to`.
pub fn is_homomorphism(h: &HomMap, from: &Instance, to: &Instance) -> bool {
    apply(h, from).is_subinstance_of(to)
}

/// Finds a homomorphism from `from` into `to`, if one exists.
pub fn find_homomorphism(from: &Instance, to: &Instance) -> Option<HomMap> {
    find_homomorphism_constrained(from, to, &HomMap::new(), &|_, _| false)
}

/// Does a homomorphism from `from` into `to` exist?
pub fn homomorphic(from: &Instance, to: &Instance) -> bool {
    find_homomorphism(from, to).is_some()
}

/// Are the two instances homomorphically equivalent (`J1 ↔ J2`)?
pub fn hom_equivalent(a: &Instance, b: &Instance) -> bool {
    homomorphic(a, b) && homomorphic(b, a)
}

/// Finds a homomorphism from `from` into `to` extending `fixed` and never
/// assigning `h(n) = v` when `forbid(n, v)` holds. The constraint hooks
/// support core computation (find an endomorphism avoiding a given null).
pub fn find_homomorphism_constrained(
    from: &Instance,
    to: &Instance,
    fixed: &HomMap,
    forbid: &dyn Fn(NullId, Value) -> bool,
) -> Option<HomMap> {
    let mut total = fixed.clone();
    // Independent per-f-block search.
    for block in f_blocks(from) {
        let solved = solve_block(&block, to, &total, forbid)?;
        total = solved;
    }
    // Ground facts (no nulls) are their own blocks and were checked inside
    // solve_block via containment.
    Some(total)
}

/// Backtracking search for one f-block. `assign` carries assignments made
/// so far (for nulls of other blocks or pre-fixed nulls — disjoint from
/// this block's free nulls except for `fixed` entries).
fn solve_block(
    block: &Instance,
    to: &Instance,
    assign: &HomMap,
    forbid: &dyn Fn(NullId, Value) -> bool,
) -> Option<HomMap> {
    let facts: Vec<Fact> = block.facts().collect();
    let mut assign = assign.clone();
    let mut done = vec![false; facts.len()];
    if search(&facts, &mut done, to, &mut assign, forbid) {
        Some(assign)
    } else {
        None
    }
}

fn search(
    facts: &[Fact],
    done: &mut [bool],
    to: &Instance,
    assign: &mut HomMap,
    forbid: &dyn Fn(NullId, Value) -> bool,
) -> bool {
    // Pick the unprocessed fact with the fewest unassigned nulls (MRV),
    // which maximizes propagation along shared nulls.
    let next = (0..facts.len()).filter(|&i| !done[i]).min_by_key(|&i| {
        facts[i]
            .args
            .iter()
            .filter(|v| matches!(v, Value::Null(n) if !assign.contains_key(n)))
            .count()
    });
    let Some(i) = next else { return true };
    done[i] = true;
    let fact = &facts[i];
    for tuple in to.tuples(fact.rel) {
        if let Some(newly) = try_map(fact, tuple, assign, forbid) {
            if search(facts, done, to, assign, forbid) {
                done[i] = false;
                return true;
            }
            for n in newly {
                assign.remove(&n);
            }
        }
    }
    done[i] = false;
    false
}

/// Tries to map `fact` onto `tuple`; on success extends `assign` and
/// returns the newly assigned nulls, on failure leaves `assign` untouched.
fn try_map(
    fact: &Fact,
    tuple: &[Value],
    assign: &mut HomMap,
    forbid: &dyn Fn(NullId, Value) -> bool,
) -> Option<Vec<NullId>> {
    debug_assert_eq!(fact.args.len(), tuple.len());
    let mut newly = Vec::new();
    for (&src, &dst) in fact.args.iter().zip(tuple.iter()) {
        let ok = match src {
            Value::Const(_) => src == dst,
            Value::Null(n) => match assign.get(&n) {
                Some(&bound) => bound == dst,
                None => {
                    if forbid(n, dst) {
                        false
                    } else {
                        assign.insert(n, dst);
                        newly.push(n);
                        true
                    }
                }
            },
        };
        if !ok {
            for n in newly {
                assign.remove(&n);
            }
            return None;
        }
    }
    Some(newly)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms_with_rel() -> (SymbolTable, RelId) {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        (syms, r)
    }

    fn null(i: u32) -> Value {
        Value::Null(NullId(i))
    }

    #[test]
    fn constants_are_rigid() {
        let (mut syms, r) = syms_with_rel();
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let from = Instance::from_facts([Fact::new(r, vec![a])]);
        let to = Instance::from_facts([Fact::new(r, vec![b])]);
        assert!(!homomorphic(&from, &to));
        let to2 = Instance::from_facts([Fact::new(r, vec![a]), Fact::new(r, vec![b])]);
        assert!(homomorphic(&from, &to2));
    }

    #[test]
    fn null_can_map_to_constant_or_null() {
        let (mut syms, r) = syms_with_rel();
        let a = Value::Const(syms.constant("a"));
        let from = Instance::from_facts([Fact::new(r, vec![null(0), null(0)])]);
        let to = Instance::from_facts([Fact::new(r, vec![a, a])]);
        let h = find_homomorphism(&from, &to).unwrap();
        assert_eq!(h[&NullId(0)], a);
        assert!(is_homomorphism(&h, &from, &to));
    }

    #[test]
    fn shared_nulls_propagate() {
        let (mut syms, r) = syms_with_rel();
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let c = Value::Const(syms.constant("c"));
        // R(n0, b), R(n0, c): n0 must work for both facts.
        let from = Instance::from_facts([
            Fact::new(r, vec![null(0), b]),
            Fact::new(r, vec![null(0), c]),
        ]);
        let to_good = Instance::from_facts([Fact::new(r, vec![a, b]), Fact::new(r, vec![a, c])]);
        let to_bad = Instance::from_facts([Fact::new(r, vec![a, b]), Fact::new(r, vec![b, c])]);
        assert!(homomorphic(&from, &to_good));
        assert!(!homomorphic(&from, &to_bad));
    }

    #[test]
    fn directed_path_does_not_fold() {
        // A directed 3-path of nulls has no hom into a directed 2-path.
        let (_syms, r) = syms_with_rel();
        let from = Instance::from_facts([
            Fact::new(r, vec![null(0), null(1)]),
            Fact::new(r, vec![null(1), null(2)]),
            Fact::new(r, vec![null(2), null(3)]),
        ]);
        let to = Instance::from_facts([
            Fact::new(r, vec![null(10), null(11)]),
            Fact::new(r, vec![null(11), null(12)]),
        ]);
        assert!(!homomorphic(&from, &to));
        // But it maps into a self-loop.
        let lp = Instance::from_facts([Fact::new(r, vec![null(20), null(20)])]);
        assert!(homomorphic(&from, &lp));
    }

    #[test]
    fn odd_cycle_does_not_map_to_shorter_odd_cycle_edge() {
        // Undirected 5-cycle (as symmetric directed edges) has no hom into
        // a single undirected edge (= 2-coloring would be required... it is
        // bipartite! A 5-cycle is NOT 2-colorable, so no hom to an edge).
        let (_syms, r) = syms_with_rel();
        let mut from = Instance::new();
        for i in 0..5u32 {
            let j = (i + 1) % 5;
            from.insert(Fact::new(r, vec![null(i), null(j)]));
            from.insert(Fact::new(r, vec![null(j), null(i)]));
        }
        let edge = Instance::from_facts([
            Fact::new(r, vec![null(10), null(11)]),
            Fact::new(r, vec![null(11), null(10)]),
        ]);
        assert!(!homomorphic(&from, &edge));
        // An even cycle does map to an edge.
        let mut even = Instance::new();
        for i in 0..4u32 {
            let j = (i + 1) % 4;
            even.insert(Fact::new(r, vec![null(i), null(j)]));
            even.insert(Fact::new(r, vec![null(j), null(i)]));
        }
        assert!(homomorphic(&even, &edge));
    }

    #[test]
    fn constrained_search_respects_forbid() {
        let (_syms, r) = syms_with_rel();
        let inst = Instance::from_facts([
            Fact::new(r, vec![null(0), null(1)]),
            Fact::new(r, vec![null(1), null(1)]),
        ]);
        // Endomorphism avoiding null 0 exists: 0 ↦ 1.
        let h = find_homomorphism_constrained(&inst, &inst, &HomMap::new(), &|_, v| v == null(0))
            .unwrap();
        assert_eq!(h[&NullId(0)], null(1));
        // Avoiding null 1 is impossible (the loop must map to a loop).
        assert!(
            find_homomorphism_constrained(&inst, &inst, &HomMap::new(), &|_, v| { v == null(1) })
                .is_none()
        );
    }

    #[test]
    fn fixed_assignments_are_honored() {
        let (mut syms, r) = syms_with_rel();
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let from = Instance::from_facts([Fact::new(r, vec![null(0)])]);
        let to = Instance::from_facts([Fact::new(r, vec![a]), Fact::new(r, vec![b])]);
        let mut fixed = HomMap::new();
        fixed.insert(NullId(0), b);
        let h = find_homomorphism_constrained(&from, &to, &fixed, &|_, _| false).unwrap();
        assert_eq!(h[&NullId(0)], b);
    }

    #[test]
    fn ground_facts_require_containment() {
        let (mut syms, r) = syms_with_rel();
        let a = Value::Const(syms.constant("a"));
        let from = Instance::from_facts([Fact::new(r, vec![a, a])]);
        let to = Instance::new();
        assert!(!homomorphic(&from, &to));
        assert!(homomorphic(&from, &from));
    }

    #[test]
    fn hom_equivalence_of_loop_and_long_path_with_loop() {
        let (_syms, r) = syms_with_rel();
        let lp = Instance::from_facts([Fact::new(r, vec![null(0), null(0)])]);
        let path_loop = Instance::from_facts([
            Fact::new(r, vec![null(1), null(2)]),
            Fact::new(r, vec![null(2), null(2)]),
        ]);
        assert!(hom_equivalent(&lp, &path_loop));
    }
}
