//! The pre-index scan engine, preserved verbatim as a reference
//! implementation.
//!
//! [`hom`](crate::hom) and [`core`](crate::core) replaced this engine with
//! an indexed, incremental, parallel one; this module keeps the original
//! full-relation-scan search and clone-heavy retraction loop so that
//! - property tests can assert the two engines agree on random inputs, and
//! - `bench_hom` can measure the speedup against the same baseline that
//!   produced the committed `BENCH_hom.json` numbers.
//!
//! Not intended for production callers — use [`crate::hom`] / [`crate::core`].

use crate::blocks::f_blocks;
use crate::hom::{apply_value, HomMap};
use ndl_core::prelude::*;

/// Finds a homomorphism from `from` into `to` by full-relation scans.
pub fn find_homomorphism_scan(from: &Instance, to: &Instance) -> Option<HomMap> {
    find_homomorphism_constrained_scan(from, to, &HomMap::new(), &|_, _| false)
}

/// Does a homomorphism from `from` into `to` exist (scan engine)?
pub fn homomorphic_scan(from: &Instance, to: &Instance) -> bool {
    find_homomorphism_scan(from, to).is_some()
}

/// Scan-engine variant of
/// [`find_homomorphism_constrained`](crate::hom::find_homomorphism_constrained).
pub fn find_homomorphism_constrained_scan(
    from: &Instance,
    to: &Instance,
    fixed: &HomMap,
    forbid: &dyn Fn(NullId, Value) -> bool,
) -> Option<HomMap> {
    let mut total = fixed.clone();
    // Independent per-f-block search.
    for block in f_blocks(from) {
        let solved = solve_block(&block, to, &total, forbid)?;
        total = solved;
    }
    Some(total)
}

/// Backtracking search for one f-block, cloning the assignment map.
fn solve_block(
    block: &Instance,
    to: &Instance,
    assign: &HomMap,
    forbid: &dyn Fn(NullId, Value) -> bool,
) -> Option<HomMap> {
    let facts: Vec<Fact> = block.facts().map(|f| f.to_fact()).collect();
    let mut assign = assign.clone();
    let mut done = vec![false; facts.len()];
    if search(&facts, &mut done, to, &mut assign, forbid) {
        Some(assign)
    } else {
        None
    }
}

fn search(
    facts: &[Fact],
    done: &mut [bool],
    to: &Instance,
    assign: &mut HomMap,
    forbid: &dyn Fn(NullId, Value) -> bool,
) -> bool {
    // Pick the unprocessed fact with the fewest unassigned nulls, which
    // maximizes propagation along shared nulls.
    let next = (0..facts.len()).filter(|&i| !done[i]).min_by_key(|&i| {
        facts[i]
            .args
            .iter()
            .filter(|v| matches!(v, Value::Null(n) if !assign.contains_key(n)))
            .count()
    });
    let Some(i) = next else { return true };
    done[i] = true;
    let fact = &facts[i];
    for tuple in to.tuples(fact.rel) {
        if let Some(newly) = try_map(fact, tuple, assign, forbid) {
            if search(facts, done, to, assign, forbid) {
                done[i] = false;
                return true;
            }
            for n in newly {
                assign.remove(&n);
            }
        }
    }
    done[i] = false;
    false
}

/// Tries to map `fact` onto `tuple`; on success extends `assign` and
/// returns the newly assigned nulls, on failure leaves `assign` untouched.
fn try_map(
    fact: &Fact,
    tuple: &[Value],
    assign: &mut HomMap,
    forbid: &dyn Fn(NullId, Value) -> bool,
) -> Option<Vec<NullId>> {
    debug_assert_eq!(fact.args.len(), tuple.len());
    let mut newly = Vec::new();
    for (&src, &dst) in fact.args.iter().zip(tuple.iter()) {
        let ok = match src {
            Value::Const(_) => src == dst,
            Value::Null(n) => match assign.get(&n) {
                Some(&bound) => bound == dst,
                None => {
                    if forbid(n, dst) {
                        false
                    } else {
                        assign.insert(n, dst);
                        newly.push(n);
                        true
                    }
                }
            },
        };
        if !ok {
            for n in newly {
                assign.remove(&n);
            }
            return None;
        }
    }
    Some(newly)
}

/// Computes the core by whole-instance clone-and-rederive retractions
/// (the original `core_of` loop).
pub fn core_of_scan(inst: &Instance) -> Instance {
    let mut current = inst.clone();
    'outer: loop {
        let nulls: Vec<NullId> = current.nulls().into_iter().collect();
        for n in nulls {
            if let Some(h) = endo_avoiding_scan(&current, n) {
                current = current.map_values(&|v| apply_value(&h, v));
                debug_assert!(!current.nulls().contains(&n));
                continue 'outer;
            }
        }
        return current;
    }
}

/// Is `inst` a core (scan engine)?
pub fn is_core_scan(inst: &Instance) -> bool {
    inst.nulls()
        .into_iter()
        .all(|n| endo_avoiding_scan(inst, n).is_none())
}

/// Finds an endomorphism of `inst` whose image avoids the null `n`.
fn endo_avoiding_scan(inst: &Instance, n: NullId) -> Option<HomMap> {
    let block = crate::blocks::block_of_null(inst, n)?;
    find_homomorphism_constrained_scan(&block, inst, &HomMap::new(), &|_, v| v == Value::Null(n))
}
