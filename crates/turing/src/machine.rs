//! Deterministic single-tape Turing machines and their runs — the
//! substrate of the Theorem 5.1 reduction.
//!
//! The tape is one-way infinite (cells 1, 2, …); in `t` steps the head can
//! reach at most cell `t + 1`, which is why the reduction only represents
//! the triangular part of the time × tape configuration matrix (Figure 8).

use std::collections::BTreeMap;

/// A machine state.
pub type StateId = usize;
/// A tape symbol; symbol 0 is the blank.
pub type SymId = usize;
/// The blank tape symbol.
pub const BLANK: SymId = 0;

/// Head movement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Move {
    /// One cell left (no-op at the left end).
    Left,
    /// One cell right.
    Right,
    /// Stay put.
    Stay,
}

/// A deterministic Turing machine. State 0 is the start state.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Number of states.
    pub num_states: usize,
    /// Number of tape symbols (including the blank, symbol 0).
    pub num_symbols: usize,
    /// `(state, read) ↦ (next state, write, move)`. Missing entries halt.
    pub transitions: BTreeMap<(StateId, SymId), (StateId, SymId, Move)>,
}

/// One configuration of a run: the tape prefix that has been touched, the
/// head position (1-based) and the state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Config {
    /// Current state.
    pub state: StateId,
    /// Head position (1-based).
    pub head: usize,
    /// Tape contents from cell 1; cells beyond are blank.
    pub tape: Vec<SymId>,
}

impl Config {
    /// The symbol at 1-based cell `p`.
    pub fn symbol_at(&self, p: usize) -> SymId {
        self.tape.get(p - 1).copied().unwrap_or(BLANK)
    }
}

/// The result of running a machine.
#[derive(Clone, Debug)]
pub struct Run {
    /// Configurations at times 1, 2, … (time 1 = initial configuration).
    pub configs: Vec<Config>,
    /// Did the machine halt within the step budget?
    pub halted: bool,
}

impl Machine {
    /// Runs the machine on `input` for at most `max_steps` steps.
    pub fn run(&self, input: &[SymId], max_steps: usize) -> Run {
        let mut config = Config {
            state: 0,
            head: 1,
            tape: input.to_vec(),
        };
        let mut configs = vec![config.clone()];
        for _ in 0..max_steps {
            let read = config.symbol_at(config.head);
            let Some(&(next, write, mv)) = self.transitions.get(&(config.state, read)) else {
                return Run {
                    configs,
                    halted: true,
                };
            };
            if config.tape.len() < config.head {
                config.tape.resize(config.head, BLANK);
            }
            config.tape[config.head - 1] = write;
            config.state = next;
            config.head = match mv {
                Move::Left => config.head.saturating_sub(1).max(1),
                Move::Right => config.head + 1,
                Move::Stay => config.head,
            };
            configs.push(config.clone());
        }
        // The budget is exhausted; the machine still counts as halted if
        // no transition applies to the final configuration.
        let read = config.symbol_at(config.head);
        let halted = !self.transitions.contains_key(&(config.state, read));
        Run { configs, halted }
    }

    /// Does the machine halt on `input` within `max_steps`?
    pub fn halts_within(&self, input: &[SymId], max_steps: usize) -> bool {
        self.run(input, max_steps).halted
    }
}

/// A machine that writes `1` while moving right for `k` cells, then halts:
/// halting time `k` on the empty input.
pub fn busy_halter(k: usize) -> Machine {
    // States 0..k: in state i, write 1, move right, go to state i+1;
    // state k has no transitions (halt).
    let mut transitions = BTreeMap::new();
    for i in 0..k {
        transitions.insert((i, BLANK), (i + 1, 1, Move::Right));
        transitions.insert((i, 1), (i + 1, 1, Move::Right));
    }
    Machine {
        num_states: k + 1,
        num_symbols: 2,
        transitions,
    }
}

/// A machine that moves right forever (never halts).
pub fn forever_right() -> Machine {
    let mut transitions = BTreeMap::new();
    transitions.insert((0, BLANK), (0, 1, Move::Right));
    transitions.insert((0, 1), (0, 1, Move::Right));
    Machine {
        num_states: 1,
        num_symbols: 2,
        transitions,
    }
}

/// A machine that bounces between the first two cells forever.
pub fn forever_bounce() -> Machine {
    let mut transitions = BTreeMap::new();
    // State 0: move right into state 1; state 1: move left into state 0.
    for sym in 0..2 {
        transitions.insert((0, sym), (1, sym, Move::Right));
        transitions.insert((1, sym), (0, sym, Move::Left));
    }
    Machine {
        num_states: 2,
        num_symbols: 2,
        transitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_halter_halts_in_k_steps() {
        let m = busy_halter(4);
        let run = m.run(&[], 100);
        assert!(run.halted);
        assert_eq!(run.configs.len(), 5); // times 1..=5
        assert_eq!(run.configs[4].head, 5);
        assert_eq!(run.configs[4].tape, vec![1, 1, 1, 1]);
        assert!(m.halts_within(&[], 4));
        assert!(!m.halts_within(&[], 3));
    }

    #[test]
    fn forever_right_never_halts() {
        let m = forever_right();
        let run = m.run(&[], 50);
        assert!(!run.halted);
        assert_eq!(run.configs.len(), 51);
        assert_eq!(run.configs[50].head, 51);
    }

    #[test]
    fn bounce_stays_in_two_cells() {
        let m = forever_bounce();
        let run = m.run(&[], 10);
        assert!(!run.halted);
        assert!(run.configs.iter().all(|c| c.head <= 2));
    }

    #[test]
    fn head_reaches_at_most_cell_t_plus_one() {
        // The triangle representation invariant (Figure 8).
        let m = forever_right();
        let run = m.run(&[], 20);
        for (t, c) in run.configs.iter().enumerate() {
            assert!(c.head <= t + 2); // time index t is 0-based here
        }
    }

    #[test]
    fn input_is_respected() {
        let m = busy_halter(2);
        let run = m.run(&[1, 1, 1], 10);
        assert_eq!(run.configs[0].symbol_at(3), 1);
        assert_eq!(run.configs[0].symbol_at(4), BLANK);
    }
}
