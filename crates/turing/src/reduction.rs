//! The Theorem 5.1 reduction: from a Turing machine to a **plain SO tgd**
//! plus a **single source key dependency** whose chase cores have bounded
//! f-block size iff the machine halts.
//!
//! The SO tgd materializes the Figure 8 enumeration of the triangular
//! time × tape configuration matrix in the target. Its clauses (all plain:
//! no nested terms, no equalities) are, writing `Good` for the
//! `check_πgood` relation (see [`crate::check`]):
//!
//! ```text
//! Good(x,y)  ∧ S(y,y')          →  N(f(x,y'), f(x,y))     (the ← step)
//! Good(x',x') ∧ S(x,x') ∧ Z(y)  →  N(f(x,y), f(x',x'))    (the ↘ step)
//! Z(x) ∧ Z(y) ∧ Good(x,y)       →  A(f(x,y))              (origin anchor)
//! Z(x)                          →  N(g(x), g(x))          (collapse trap)
//! ```
//!
//! The two navigation clauses are the ones displayed in the paper; they
//! use the successor relation only "backwards" and only jump to the
//! diagonal, which is what the single key dependency (unique predecessors
//! in S) can guarantee. Enumeration fragments not connected to the
//! anchored origin fold into the trap self-loop and collapse in the core;
//! the anchored chain is a directed path from `f(1,1)` and survives, so
//! its length — quadratic in the number of locally-correct rows — is the
//! core f-block size observable.

use crate::check::{good_cells, with_good_facts};
use crate::encode::{encode_run, EncodedRun, RunSchema};
use crate::machine::Machine;
use ndl_chase::{chase_so, NullFactory};
use ndl_core::prelude::*;
use ndl_hom::{blocks::f_blocks, core_of, f_block_size, f_degree};

/// The reduction artifacts for one machine.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// The source-schema relations of the candidate-run encoding.
    pub schema: RunSchema,
    /// The derived `Good` relation (the `check_πgood` abbreviation).
    pub good: RelId,
    /// The plain SO tgd.
    pub tgd: SoTgd,
    /// The single source key dependency: `S(x,y) ∧ S(x',y) → x = x'`.
    pub key: Egd,
    /// Target relations: the enumeration edges `N` and the anchor `A`.
    pub n_rel: RelId,
    /// See `n_rel`.
    pub a_rel: RelId,
}

/// Builds the reduction for a machine.
pub fn build_reduction(machine: &Machine, syms: &mut SymbolTable) -> Reduction {
    let schema = RunSchema::for_machine(machine, syms);
    let good = syms.rel("Good");
    let n_rel = syms.rel("N");
    let a_rel = syms.rel("A");
    let f = syms.fresh_func("f");
    let g = syms.fresh_func("g");
    let x = syms.var("x");
    let y = syms.var("y");
    let xp = syms.var("xp");
    let yp = syms.var("yp");
    let fx = |a: VarId, b: VarId| Term::app(f, vec![Term::Var(a), Term::Var(b)]);
    let clauses = vec![
        // Good(x,y) ∧ S(y,y') → N(f(x,y'), f(x,y)).
        SoClause::new(
            vec![
                Atom::new(good, vec![x, y]),
                Atom::new(schema.s, vec![y, yp]),
            ],
            vec![],
            vec![TermAtom::new(n_rel, vec![fx(x, yp), fx(x, y)])],
        ),
        // Good(x',x') ∧ S(x,x') ∧ Z(y) → N(f(x,y), f(x',x')).
        SoClause::new(
            vec![
                Atom::new(good, vec![xp, xp]),
                Atom::new(schema.s, vec![x, xp]),
                Atom::new(schema.z, vec![y]),
            ],
            vec![],
            vec![TermAtom::new(n_rel, vec![fx(x, y), fx(xp, xp)])],
        ),
        // Z(x) ∧ Z(y) ∧ Good(x,y) → A(f(x,y)).
        SoClause::new(
            vec![
                Atom::new(schema.z, vec![x]),
                Atom::new(schema.z, vec![y]),
                Atom::new(good, vec![x, y]),
            ],
            vec![],
            vec![TermAtom::new(a_rel, vec![fx(x, y)])],
        ),
        // Z(x) → N(g(x), g(x)).
        SoClause::new(
            vec![Atom::new(schema.z, vec![x])],
            vec![],
            vec![TermAtom::new(
                n_rel,
                vec![
                    Term::app(g, vec![Term::Var(x)]),
                    Term::app(g, vec![Term::Var(x)]),
                ],
            )],
        ),
    ];
    let tgd = SoTgd::new(vec![f, g], clauses);
    debug_assert!(tgd.is_plain());
    let key = schema.key_dependency(syms);
    Reduction {
        schema,
        good,
        tgd,
        key,
        n_rel,
        a_rel,
    }
}

/// The structural measures of one reduction run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReductionOutcome {
    /// Source size parameter `n` (length of the successor relation).
    pub n: usize,
    /// Rows of the run that were locally correct all the way.
    pub good_rows: usize,
    /// Size of the core f-block containing the anchored origin (0 if the
    /// origin is not good).
    pub anchored_block_size: usize,
    /// f-block size of the whole core.
    pub core_fblock_size: usize,
    /// f-degree of the core.
    pub core_fdegree: usize,
}

/// Runs the machine on the empty tape, encodes the (honest) run over `n`
/// indexes, derives `Good`, chases the reduction tgd, and measures the
/// core. Pass a `mutate` hook to corrupt the encoding first (to exercise
/// the guard/trap gadgets).
pub fn measure(
    machine: &Machine,
    reduction: &Reduction,
    n: usize,
    syms: &mut SymbolTable,
    prefix: &str,
    mutate: impl FnOnce(EncodedRun) -> EncodedRun,
) -> ReductionOutcome {
    let run = machine.run(&[], n + 1);
    let enc = mutate(encode_run(&run, n, &reduction.schema, syms, prefix));
    assert!(
        ndl_chase::satisfies_egds(&enc.instance, std::slice::from_ref(&reduction.key)),
        "encoded run violates the key dependency"
    );
    let good = good_cells(&enc, &reduction.schema, machine);
    let good_rows = (1..=n)
        .take_while(|&t| (1..=t).all(|p| good.contains(&(t, p))))
        .count();
    let source = with_good_facts(&enc, reduction.good, &good);
    let mut nulls = NullFactory::new();
    let chased = chase_so(&source, &reduction.tgd, &mut nulls);
    let core = core_of(&chased);
    // The anchored block: the f-block containing the null of the A-fact.
    let anchored_block_size = core
        .tuples(reduction.a_rel)
        .next()
        .and_then(|t| t[0].as_null())
        .and_then(|anchor| {
            f_blocks(&core)
                .into_iter()
                .find(|b| b.nulls().contains(&anchor))
                .map(|b| b.len())
        })
        .unwrap_or(0);
    ReductionOutcome {
        n,
        good_rows,
        anchored_block_size,
        core_fblock_size: f_block_size(&core),
        core_fdegree: f_degree(&core),
    }
}

/// Sweeps the reduction over source sizes, with honest encodings.
pub fn sweep(
    machine: &Machine,
    reduction: &Reduction,
    ns: &[usize],
    syms: &mut SymbolTable,
) -> Vec<ReductionOutcome> {
    ns.iter()
        .enumerate()
        .map(|(i, &n)| measure(machine, reduction, n, syms, &format!("s{i}_"), |e| e))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::delete_row;
    use crate::machine::{busy_halter, forever_right};

    #[test]
    fn reduction_tgd_is_plain_and_valid() {
        let mut syms = SymbolTable::new();
        let m = busy_halter(2);
        let red = build_reduction(&m, &mut syms);
        assert!(red.tgd.is_plain());
        let mut schema = Schema::new();
        red.tgd.validate(&mut schema).unwrap();
        red.key.validate(&mut schema).unwrap();
    }

    #[test]
    fn halting_machine_plateaus() {
        let mut syms = SymbolTable::new();
        let m = busy_halter(2); // 3 good rows (configs t = 1..=3)
        let red = build_reduction(&m, &mut syms);
        let outcomes = sweep(&m, &red, &[4, 6, 8], &mut syms);
        assert!(outcomes.iter().all(|o| o.good_rows == 3));
        // Anchored block size is the same for every n past the halt time.
        assert_eq!(
            outcomes[0].anchored_block_size,
            outcomes[1].anchored_block_size
        );
        assert_eq!(
            outcomes[1].anchored_block_size,
            outcomes[2].anchored_block_size
        );
        assert!(outcomes[0].anchored_block_size > 0);
    }

    #[test]
    fn non_halting_machine_grows() {
        let mut syms = SymbolTable::new();
        let m = forever_right();
        let red = build_reduction(&m, &mut syms);
        let outcomes = sweep(&m, &red, &[3, 5, 7], &mut syms);
        assert!(outcomes
            .windows(2)
            .all(|w| { w[1].anchored_block_size > w[0].anchored_block_size }));
        // And per Theorem 5.2's argument the f-degree stays bounded while
        // the block grows: the enumeration is a path.
        let degrees: Vec<usize> = outcomes.iter().map(|o| o.core_fdegree).collect();
        assert!(degrees.iter().all(|&d| d <= degrees[0].max(2)));
    }

    #[test]
    fn missing_information_truncates_the_enumeration() {
        let mut syms = SymbolTable::new();
        let m = forever_right();
        let red = build_reduction(&m, &mut syms);
        let full = measure(&m, &red, 6, &mut syms, "f_", |e| e);
        let schema = red.schema.clone();
        let gutted = measure(&m, &red, 6, &mut syms, "g_", |e| delete_row(&e, &schema, 4));
        assert!(gutted.anchored_block_size < full.anchored_block_size);
        assert!(gutted.good_rows < full.good_rows);
        assert!(gutted.anchored_block_size > 0); // rows 1-3 still anchored
    }

    #[test]
    fn anchored_chain_is_connected_and_directed() {
        let mut syms = SymbolTable::new();
        let m = forever_right();
        let red = build_reduction(&m, &mut syms);
        let o = measure(&m, &red, 5, &mut syms, "c_", |e| e);
        // The triangle has 15 cells; the enumeration visits all of them,
        // so the anchored chain has ≥ 14 edges (plus the anchor fact).
        assert!(o.anchored_block_size >= 14);
    }
}
