//! The local-correctness check `check_πgood[x, y]` of the Theorem 5.1
//! reduction.
//!
//! The paper abbreviates a "complex definition" checking that the
//! configuration data at time `x`, tape position `y` is locally correct.
//! We implement the equivalent window check as code deriving a
//! `Good(t, p)` source relation from the candidate-run relations: a cell
//! is good iff its content and head marking follow from the machine's
//! transition function applied to the (t-1)-row window `p-1, p, p+1`, with
//! **missing** or **ambiguous** information making it bad — exactly the
//! two failure modes ("incorrect and missing information") the reduction
//! must detect. See DESIGN.md for why this code-level substitution
//! preserves the construction's observable behaviour.

use crate::encode::{EncodedRun, RunSchema};
use crate::machine::{Machine, Move, StateId, SymId, BLANK};
use ndl_core::prelude::*;
use std::collections::BTreeSet;

/// The contents of one candidate-run cell as read from the instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CellView {
    sym: SymId,
    head: Option<StateId>,
}

/// Reads cell `(t, p)` from the instance; `None` when the content is
/// missing or ambiguous (several symbols, or several head states).
fn read_cell(
    inst: &Instance,
    schema: &RunSchema,
    indexes: &[Value],
    t: usize,
    p: usize,
) -> Option<CellView> {
    let (tv, pv) = (indexes[t - 1], indexes[p - 1]);
    let mut sym = None;
    for (s, &rel) in schema.cell.iter().enumerate() {
        if inst.contains_tuple(rel, &[tv, pv]) {
            if sym.is_some() {
                return None; // ambiguous content
            }
            sym = Some(s);
        }
    }
    let sym = sym?;
    let mut head = None;
    for (q, &rel) in schema.head.iter().enumerate() {
        if inst.contains_tuple(rel, &[tv, pv]) {
            if head.is_some() {
                return None; // ambiguous head state
            }
            head = Some(q);
        }
    }
    Some(CellView { sym, head })
}

/// The set of good cells `(t, p)` (1-based, `p ≤ t ≤ n`) of an encoded
/// candidate run, for a machine started on the empty tape.
pub fn good_cells(
    enc: &EncodedRun,
    schema: &RunSchema,
    machine: &Machine,
) -> BTreeSet<(usize, usize)> {
    let n = enc.indexes.len();
    let mut good = BTreeSet::new();
    for t in 1..=n {
        for p in 1..=t {
            if is_good(enc, schema, machine, t, p) {
                good.insert((t, p));
            }
        }
    }
    good
}

fn is_good(enc: &EncodedRun, schema: &RunSchema, machine: &Machine, t: usize, p: usize) -> bool {
    let inst = &enc.instance;
    let idx = &enc.indexes;
    let Some(actual) = read_cell(inst, schema, idx, t, p) else {
        return false;
    };
    if t == 1 {
        // Initial configuration on the empty tape: blank cell, head at 1
        // in the start state. Row 1 has only the cell p = 1.
        return actual.sym == BLANK && actual.head == Some(0);
    }
    // Window over row t-1. Cells outside the triangle are virtual blanks
    // with no head.
    let window = |pos: usize| -> Option<CellView> {
        if pos >= 1 && pos < t {
            read_cell(inst, schema, idx, t - 1, pos)
        } else {
            Some(CellView {
                sym: BLANK,
                head: None,
            })
        }
    };
    let Some(mid) = window(p) else { return false };
    let left = if p >= 2 { window(p - 1) } else { None };
    if p >= 2 && left.is_none() {
        return false; // required window cell missing/ambiguous
    }
    let Some(right) = window(p + 1) else {
        return false;
    };
    // Expected content of (t, p).
    let expected_sym = match mid.head {
        Some(q) => match machine.transitions.get(&(q, mid.sym)) {
            Some(&(_, write, _)) => write,
            None => return false, // the machine halted — row t is invalid
        },
        None => mid.sym,
    };
    if actual.sym != expected_sym {
        return false;
    }
    // Expected head arrival at (t, p).
    let mut arrivals: Vec<StateId> = Vec::new();
    if let Some(l) = left {
        if let Some(q) = l.head {
            if let Some(&(next, _, mv)) = machine.transitions.get(&(q, l.sym)) {
                if mv == Move::Right {
                    arrivals.push(next);
                }
            }
        }
    }
    if let Some(q) = mid.head {
        if let Some(&(next, _, mv)) = machine.transitions.get(&(q, mid.sym)) {
            let stays = mv == Move::Stay || (mv == Move::Left && p == 1);
            if stays {
                arrivals.push(next);
            }
        }
    }
    if let Some(q) = right.head {
        if let Some(&(next, _, mv)) = machine.transitions.get(&(q, right.sym)) {
            if mv == Move::Left {
                arrivals.push(next);
            }
        }
    }
    match (arrivals.as_slice(), actual.head) {
        ([], None) => true,
        ([q], Some(actual_q)) => *q == actual_q,
        _ => false,
    }
}

/// Adds the derived `Good(t, p)` facts to a copy of the source instance.
pub fn with_good_facts(
    enc: &EncodedRun,
    good_rel: RelId,
    good: &BTreeSet<(usize, usize)>,
) -> Instance {
    let mut inst = enc.instance.clone();
    for &(t, p) in good {
        inst.insert(Fact::new(
            good_rel,
            vec![enc.indexes[t - 1], enc.indexes[p - 1]],
        ));
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{delete_row, encode_run, flip_cell};
    use crate::machine::{busy_halter, forever_right};

    #[test]
    fn honest_halting_run_is_good_up_to_halt() {
        let mut syms = SymbolTable::new();
        let m = busy_halter(3); // halts after 3 steps; configs at t = 1..=4
        let schema = RunSchema::for_machine(&m, &mut syms);
        let run = m.run(&[], 100);
        let enc = encode_run(&run, 8, &schema, &mut syms, "i");
        let good = good_cells(&enc, &schema, &m);
        // All triangle cells of rows 1..=4 are good: 1+2+3+4 = 10.
        assert_eq!(good.len(), 10);
        assert!(good.contains(&(1, 1)));
        assert!(good.contains(&(4, 4)));
        // Row 5 would require a transition from the halted state.
        assert!(!good.contains(&(5, 1)));
    }

    #[test]
    fn honest_infinite_run_is_good_everywhere() {
        let mut syms = SymbolTable::new();
        let m = forever_right();
        let schema = RunSchema::for_machine(&m, &mut syms);
        let run = m.run(&[], 100);
        let enc = encode_run(&run, 7, &schema, &mut syms, "i");
        let good = good_cells(&enc, &schema, &m);
        assert_eq!(good.len(), 7 * 8 / 2);
    }

    #[test]
    fn missing_information_breaks_goodness() {
        let mut syms = SymbolTable::new();
        let m = forever_right();
        let schema = RunSchema::for_machine(&m, &mut syms);
        let run = m.run(&[], 100);
        let enc = encode_run(&run, 6, &schema, &mut syms, "i");
        let gutted = delete_row(&enc, &schema, 3);
        let good = good_cells(&gutted, &schema, &m);
        // Rows 1-2 stay good; row 3 cells are gone (not good); row 4
        // cells need row 3 info — bad too.
        assert!(good.contains(&(2, 2)));
        assert!(!good.contains(&(3, 1)));
        assert!(!good.contains(&(4, 2)));
    }

    #[test]
    fn incorrect_information_breaks_goodness_locally() {
        let mut syms = SymbolTable::new();
        let m = forever_right();
        let schema = RunSchema::for_machine(&m, &mut syms);
        let run = m.run(&[], 100);
        let enc = encode_run(&run, 6, &schema, &mut syms, "i");
        let flipped = flip_cell(&enc, &schema, &m, 3, 1);
        let good = good_cells(&flipped, &schema, &m);
        // The flipped cell disagrees with its window.
        assert!(!good.contains(&(3, 1)));
        // And the row above it inherits the inconsistency at (4, 1).
        assert!(!good.contains(&(4, 1)));
        // Cells away from the corruption stay good.
        assert!(good.contains(&(3, 3)));
    }

    #[test]
    fn good_facts_materialize() {
        let mut syms = SymbolTable::new();
        let m = busy_halter(2);
        let schema = RunSchema::for_machine(&m, &mut syms);
        let good_rel = syms.rel("Good");
        let run = m.run(&[], 10);
        let enc = encode_run(&run, 4, &schema, &mut syms, "i");
        let good = good_cells(&enc, &schema, &m);
        let inst = with_good_facts(&enc, good_rel, &good);
        assert_eq!(inst.rel_len(good_rel), good.len());
    }
}
