//! # ndl-turing
//!
//! The Turing-machine substrate of Section 5 of *Nested Dependencies:
//! Structure and Reasoning* (PODS 2014), and the Theorem 5.1 reduction:
//! from a Turing machine to a plain SO tgd plus a single source key
//! dependency whose chase cores have bounded f-block size iff the machine
//! halts.
//!
//! - [`machine`] — deterministic Turing machines and runs;
//! - [`encode`] — candidate runs as source instances (successor + zero +
//!   configuration relations), with corruption helpers;
//! - [`check`] — the `check_πgood` local-correctness relation;
//! - [`reduction`] — the SO tgd, the key dependency, and the Figure 8
//!   enumeration measurements.

#![warn(missing_docs)]

pub mod check;
pub mod encode;
pub mod machine;
pub mod reduction;

pub use check::{good_cells, with_good_facts};
pub use encode::{delete_row, encode_run, flip_cell, EncodedRun, RunSchema};
pub use machine::{busy_halter, forever_bounce, forever_right, Config, Machine, Move, Run};
pub use reduction::{build_reduction, measure, sweep, Reduction, ReductionOutcome};
