//! Encoding candidate Turing-machine runs as source instances — the
//! "represent a run of a Turing machine (state and tape configurations)
//! together with a successor relation in the source instance" part of the
//! Theorem 5.1 reduction.
//!
//! Source schema of the reduction:
//! - `S/2` — the successor relation over time/tape indexes (a single key
//!   dependency `S(x,y) ∧ S(x',y) → x = x'` guarantees unique
//!   predecessors);
//! - `Z/1` — the initial element ("zero");
//! - `C<sym>/2` — `C<sym>(t, p)`: tape cell `p` holds symbol `sym` at
//!   time `t`;
//! - `H<state>/2` — `H<state>(t, p)`: at time `t` the head is at `p` in
//!   state `state`.
//!
//! Only the triangular part `p ≤ t` of the configuration matrix is
//! represented (Figure 8). Corruption helpers simulate the "incorrect and
//! missing information" the reduction must be robust against.

use crate::machine::{Machine, Run, SymId};
use ndl_core::prelude::*;

/// Interned relation ids of the reduction's source schema.
#[derive(Clone, Debug)]
pub struct RunSchema {
    /// Successor relation.
    pub s: RelId,
    /// Zero marker.
    pub z: RelId,
    /// Cell-content relations, indexed by symbol.
    pub cell: Vec<RelId>,
    /// Head/state relations, indexed by state.
    pub head: Vec<RelId>,
}

impl RunSchema {
    /// Interns the schema for a machine.
    pub fn for_machine(machine: &Machine, syms: &mut SymbolTable) -> RunSchema {
        RunSchema {
            s: syms.rel("S"),
            z: syms.rel("Z"),
            cell: (0..machine.num_symbols)
                .map(|i| syms.rel(&format!("C{i}")))
                .collect(),
            head: (0..machine.num_states)
                .map(|i| syms.rel(&format!("H{i}")))
                .collect(),
        }
    }

    /// The single key dependency of Theorem 5.1: unique predecessors in S.
    pub fn key_dependency(&self, syms: &mut SymbolTable) -> Egd {
        let x = syms.fresh_var("kx");
        let x2 = syms.fresh_var("kxp");
        let y = syms.fresh_var("ky");
        Egd::new(
            vec![
                Atom::new(self.s, vec![x, y]),
                Atom::new(self.s, vec![x2, y]),
            ],
            (x, x2),
        )
    }
}

/// An encoded candidate run: the source instance plus the index constants.
#[derive(Clone, Debug)]
pub struct EncodedRun {
    /// The source instance.
    pub instance: Instance,
    /// The index constants `1..=n` (shared by time and tape axes).
    pub indexes: Vec<Value>,
    /// Number of time rows actually encoded (≤ n; fewer when the machine
    /// halted earlier).
    pub rows: usize,
}

/// Encodes the first `n` rows of a run (or all of it, if the machine
/// halted sooner) over index constants `1..=n`.
pub fn encode_run(
    run: &Run,
    n: usize,
    schema: &RunSchema,
    syms: &mut SymbolTable,
    prefix: &str,
) -> EncodedRun {
    let mut instance = Instance::new();
    let indexes: Vec<Value> = (1..=n)
        .map(|i| Value::Const(syms.constant(&format!("{prefix}{i}"))))
        .collect();
    for i in 0..n.saturating_sub(1) {
        instance.insert(Fact::new(schema.s, vec![indexes[i], indexes[i + 1]]));
    }
    if n >= 1 {
        instance.insert(Fact::new(schema.z, vec![indexes[0]]));
    }
    let rows = run.configs.len().min(n);
    for t in 1..=rows {
        let config = &run.configs[t - 1];
        for p in 1..=t {
            let sym: SymId = config.symbol_at(p);
            instance.insert(Fact::new(
                schema.cell[sym],
                vec![indexes[t - 1], indexes[p - 1]],
            ));
            if config.head == p {
                instance.insert(Fact::new(
                    schema.head[config.state],
                    vec![indexes[t - 1], indexes[p - 1]],
                ));
            }
        }
    }
    EncodedRun {
        instance,
        indexes,
        rows,
    }
}

/// Corrupts the encoding by deleting all configuration facts of row `t`
/// ("missing information").
pub fn delete_row(enc: &EncodedRun, schema: &RunSchema, t: usize) -> EncodedRun {
    let row = enc.indexes[t - 1];
    let instance = enc.instance.filter(&|f| {
        let is_config = schema.cell.contains(&f.rel) || schema.head.contains(&f.rel);
        !(is_config && f.args[0] == row)
    });
    EncodedRun {
        instance,
        indexes: enc.indexes.clone(),
        rows: enc.rows,
    }
}

/// Corrupts the encoding by flipping the symbol of cell `(t, p)` to a
/// different one ("incorrect information").
pub fn flip_cell(
    enc: &EncodedRun,
    schema: &RunSchema,
    machine: &Machine,
    t: usize,
    p: usize,
) -> EncodedRun {
    let (tv, pv) = (enc.indexes[t - 1], enc.indexes[p - 1]);
    let mut instance = enc.instance.clone();
    for (sym, &rel) in schema.cell.iter().enumerate() {
        if instance.contains_tuple(rel, &[tv, pv]) {
            instance.remove(&Fact::new(rel, vec![tv, pv]));
            let flipped = (sym + 1) % machine.num_symbols;
            instance.insert(Fact::new(schema.cell[flipped], vec![tv, pv]));
            break;
        }
    }
    EncodedRun {
        instance,
        indexes: enc.indexes.clone(),
        rows: enc.rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::busy_halter;

    #[test]
    fn triangle_encoding() {
        let mut syms = SymbolTable::new();
        let m = busy_halter(3);
        let schema = RunSchema::for_machine(&m, &mut syms);
        let run = m.run(&[], 100);
        let enc = encode_run(&run, 6, &schema, &mut syms, "i");
        assert_eq!(enc.rows, 4); // halted: 4 configurations
        assert_eq!(enc.instance.rel_len(schema.s), 5);
        assert_eq!(enc.instance.rel_len(schema.z), 1);
        // Cell facts: rows 1..=4, row t has t cells → 1+2+3+4 = 10.
        let cells: usize = schema.cell.iter().map(|&r| enc.instance.rel_len(r)).sum();
        assert_eq!(cells, 10);
        // One head fact per encoded row whose head is inside the triangle.
        let heads: usize = schema.head.iter().map(|&r| enc.instance.rel_len(r)).sum();
        assert_eq!(heads, 4);
    }

    #[test]
    fn non_halting_fills_all_rows() {
        let mut syms = SymbolTable::new();
        let m = crate::machine::forever_right();
        let schema = RunSchema::for_machine(&m, &mut syms);
        let run = m.run(&[], 100);
        let enc = encode_run(&run, 8, &schema, &mut syms, "i");
        assert_eq!(enc.rows, 8);
    }

    #[test]
    fn key_dependency_holds_on_successor() {
        let mut syms = SymbolTable::new();
        let m = busy_halter(2);
        let schema = RunSchema::for_machine(&m, &mut syms);
        let egd = schema.key_dependency(&mut syms);
        let run = m.run(&[], 10);
        let enc = encode_run(&run, 5, &schema, &mut syms, "i");
        assert!(ndl_chase::satisfies_egds(&enc.instance, &[egd]));
    }

    #[test]
    fn corruption_helpers() {
        let mut syms = SymbolTable::new();
        let m = crate::machine::forever_right();
        let schema = RunSchema::for_machine(&m, &mut syms);
        let run = m.run(&[], 10);
        let enc = encode_run(&run, 5, &schema, &mut syms, "i");
        let gutted = delete_row(&enc, &schema, 3);
        assert!(gutted.instance.len() < enc.instance.len());
        let flipped = flip_cell(&enc, &schema, &m, 2, 1);
        assert_eq!(flipped.instance.len(), enc.instance.len());
        assert_ne!(flipped.instance, enc.instance);
    }
}
