//! Observational equivalence of the columnar [`Instance`] (arena-backed
//! [`FactStore`]) and the pre-refactor [`BTreeInstance`]
//! (`BTreeMap<RelId, BTreeSet<Vec<Value>>>`), driven by seeded random
//! operation sequences.
//!
//! The columnar store is free to differ in representation (stable ids,
//! tombstones, revival) but must be indistinguishable through the
//! instance API: same insert/remove/contains answers, same `len`, same
//! sorted fact enumeration, same `Display`, and no dependence on
//! insertion order.

use ndl_core::btree::BTreeInstance;
use ndl_core::prelude::*;
use proptest::prelude::*;

/// A tiny deterministic generator (splitmix64) so the test depends only
/// on the seed proptest picks, not on a rand crate.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A small universe of relations (arities 1–3) and values (constants and
/// nulls) from which operation sequences draw, dense enough that inserts,
/// duplicate inserts and removes of present facts all actually happen.
fn universe(syms: &mut SymbolTable) -> (Vec<(RelId, usize)>, Vec<Value>) {
    let rels = vec![(syms.rel("R"), 2), (syms.rel("S"), 1), (syms.rel("T"), 3)];
    let mut vals: Vec<Value> = (0..4)
        .map(|i| Value::Const(syms.constant(&format!("c{i}"))))
        .collect();
    vals.push(Value::Null(NullId(0)));
    vals.push(Value::Null(NullId(1)));
    (rels, vals)
}

fn random_fact(g: &mut Gen, rels: &[(RelId, usize)], vals: &[Value]) -> Fact {
    let (rel, arity) = rels[g.below(rels.len())];
    let args: Vec<Value> = (0..arity).map(|_| vals[g.below(vals.len())]).collect();
    Fact::new(rel, args)
}

/// Both representations rendered through their deterministic sorted
/// iteration, for exact comparison.
fn observed(new: &Instance, old: &BTreeInstance, syms: &SymbolTable) -> (Vec<Fact>, Vec<Fact>) {
    let new_facts: Vec<Fact> = new.facts().map(|f| f.to_fact()).collect();
    let old_facts: Vec<Fact> = old.facts().collect();
    assert_eq!(new.display(syms), old.display(syms));
    (new_facts, old_facts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random insert/remove/contains sequences observe identically on the
    /// columnar store and the B-tree baseline — including re-insertion
    /// after removal (tombstone revival on the columnar side).
    #[test]
    fn op_sequences_are_observationally_equivalent(seed in 0u64..100_000, ops in 1usize..120) {
        let mut syms = SymbolTable::new();
        let (rels, vals) = universe(&mut syms);
        let mut g = Gen(seed);
        let mut new = Instance::new();
        let mut old = BTreeInstance::new();
        for _ in 0..ops {
            let f = random_fact(&mut g, &rels, &vals);
            match g.below(4) {
                // Insert twice as often as remove so instances grow.
                0 | 1 => {
                    prop_assert_eq!(new.insert(f.clone()), old.insert(f));
                }
                2 => {
                    prop_assert_eq!(new.remove(&f), old.remove(&f));
                }
                _ => {
                    prop_assert_eq!(new.contains(&f), old.contains(&f));
                    prop_assert_eq!(
                        new.contains_tuple(f.rel, &f.args),
                        old.contains_tuple(f.rel, &f.args)
                    );
                }
            }
            prop_assert_eq!(new.len(), old.len());
            prop_assert_eq!(new.is_empty(), old.is_empty());
        }
        let (new_facts, old_facts) = observed(&new, &old, &syms);
        prop_assert_eq!(new_facts, old_facts);
        prop_assert_eq!(new.adom(), old.adom());
        prop_assert_eq!(new.nulls(), old.nulls());
        for &(rel, _) in &rels {
            prop_assert_eq!(new.rel_len(rel), old.rel_len(rel));
            let new_tuples: Vec<Vec<Value>> =
                new.tuples(rel).map(<[Value]>::to_vec).collect();
            let old_tuples: Vec<Vec<Value>> = old.tuples(rel).cloned().collect();
            prop_assert_eq!(new_tuples, old_tuples);
        }
    }

    /// The columnar instance is a value: any insertion order of the same
    /// fact multiset yields equal instances, the same sorted enumeration
    /// and the same `Display` — duplicates deduplicate on the way in.
    #[test]
    fn insertion_order_does_not_matter(seed in 0u64..100_000, n in 0usize..60) {
        let mut syms = SymbolTable::new();
        let (rels, vals) = universe(&mut syms);
        let mut g = Gen(seed);
        // Draw with duplicates, then shuffle into a second order.
        let facts: Vec<Fact> = (0..n).map(|_| random_fact(&mut g, &rels, &vals)).collect();
        let mut shuffled = facts.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, g.below(i + 1));
        }
        let a = Instance::from_facts(facts.iter().cloned());
        let b = Instance::from_facts(shuffled);
        prop_assert_eq!(&a, &b);
        let a_order: Vec<Fact> = a.facts().map(|f| f.to_fact()).collect();
        let b_order: Vec<Fact> = b.facts().map(|f| f.to_fact()).collect();
        prop_assert_eq!(a_order, b_order);
        prop_assert_eq!(a.display(&syms), b.display(&syms));
        // Dedup: size equals the number of distinct facts drawn.
        let distinct: std::collections::BTreeSet<&Fact> = facts.iter().collect();
        prop_assert_eq!(a.len(), distinct.len());
    }

    /// Removal composes with the equivalence: deleting a random subset
    /// from both representations leaves them observing identically, and
    /// re-inserting a removed fact restores it (revived tombstones behave
    /// like fresh facts).
    #[test]
    fn removal_and_revival_preserve_equivalence(seed in 0u64..100_000, n in 1usize..50) {
        let mut syms = SymbolTable::new();
        let (rels, vals) = universe(&mut syms);
        let mut g = Gen(seed);
        let facts: Vec<Fact> = (0..n).map(|_| random_fact(&mut g, &rels, &vals)).collect();
        let mut new = Instance::from_facts(facts.iter().cloned());
        let mut old = BTreeInstance::from_facts(facts.iter().cloned());
        let removed: Vec<Fact> = facts
            .iter()
            .filter(|_| g.below(2) == 0)
            .cloned()
            .collect();
        for f in &removed {
            prop_assert_eq!(new.remove(f), old.remove(f));
        }
        let (new_facts, old_facts) = observed(&new, &old, &syms);
        prop_assert_eq!(new_facts, old_facts);
        for f in &removed {
            prop_assert_eq!(new.insert(f.clone()), old.insert(f.clone()));
        }
        let (new_facts, old_facts) = observed(&new, &old, &syms);
        prop_assert_eq!(new_facts, old_facts);
    }
}
