//! Instances: finite relations over constants and labeled nulls.
//!
//! An [`Instance`] is a thin wrapper around the arena-backed columnar
//! [`FactStore`]: O(1) hashed dedup on insert, an
//! O(1) cached fact count, and borrowed [`FactRef`] tuple views instead of
//! per-fact `Vec` clones at API boundaries. Deterministic iteration order
//! is preserved from the original B-tree layout: [`Instance::facts`],
//! [`Instance::display`] and the serialized form all enumerate facts in
//! sorted `(relation, tuple)` order, so printed figures, tests and
//! experiment logs are stable across runs *and* across the storage-layer
//! refactor.

use crate::store::FactStore;
use crate::symbol::{RelId, SymbolTable};
use crate::value::{NullId, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A fact `R(v1, ..., vk)` of an instance, owning its tuple.
///
/// Engines pass borrowed [`FactRef`] views where possible; `Fact` remains
/// the owned form for construction, storage in worklists, and serde.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Fact {
    /// The relation symbol.
    pub rel: RelId,
    /// The tuple of values.
    pub args: Vec<Value>,
}

impl Fact {
    /// Creates a fact.
    pub fn new(rel: RelId, args: impl Into<Vec<Value>>) -> Self {
        Fact {
            rel,
            args: args.into(),
        }
    }

    /// A borrowed view of this fact.
    pub fn as_ref(&self) -> FactRef<'_> {
        FactRef {
            rel: self.rel,
            args: &self.args,
        }
    }

    /// The labeled nulls occurring in this fact (deduplicated, ordered).
    pub fn nulls(&self) -> BTreeSet<NullId> {
        self.args.iter().filter_map(|v| v.as_null()).collect()
    }

    /// Renders the fact, e.g. `R(a,_N0)`.
    pub fn display<'a>(&'a self, syms: &'a SymbolTable) -> impl fmt::Display + 'a {
        self.as_ref().display(syms)
    }
}

/// A borrowed view of a fact: the relation symbol plus the tuple as a
/// slice into the columnar store. `Copy`, 24 bytes, no allocation.
///
/// Ordering agrees with [`Fact`]: `(rel, args)` lexicographically.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FactRef<'a> {
    /// The relation symbol.
    pub rel: RelId,
    /// The tuple of values, borrowed from the store.
    pub args: &'a [Value],
}

impl<'a> FactRef<'a> {
    /// Clones into an owned [`Fact`].
    pub fn to_fact(self) -> Fact {
        Fact {
            rel: self.rel,
            args: self.args.to_vec(),
        }
    }

    /// The labeled nulls occurring in this fact (deduplicated, ordered).
    pub fn nulls(self) -> BTreeSet<NullId> {
        self.args.iter().filter_map(|v| v.as_null()).collect()
    }

    /// Renders the fact, e.g. `R(a,_N0)`.
    pub fn display<'s>(self, syms: &'s SymbolTable) -> impl fmt::Display + 's
    where
        'a: 's,
    {
        struct D<'s>(FactRef<'s>, &'s SymbolTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}(", self.1.rel_name(self.0.rel))?;
                for (i, v) in self.0.args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", v.display(self.1))?;
                }
                write!(f, ")")
            }
        }
        D(self, syms)
    }
}

impl PartialEq<Fact> for FactRef<'_> {
    fn eq(&self, other: &Fact) -> bool {
        self.rel == other.rel && self.args == other.args.as_slice()
    }
}

impl PartialEq<FactRef<'_>> for Fact {
    fn eq(&self, other: &FactRef<'_>) -> bool {
        other == self
    }
}

/// A finite instance: a set of facts in a columnar [`FactStore`].
#[derive(Clone, Default, Debug)]
pub struct Instance {
    store: FactStore,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an instance from an iterator of facts.
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> Self {
        let mut inst = Instance::new();
        for f in facts {
            inst.insert(f);
        }
        inst
    }

    /// Wraps an existing store.
    pub fn from_store(store: FactStore) -> Self {
        Instance { store }
    }

    /// The underlying columnar store (counters, id-level access).
    pub fn store(&self) -> &FactStore {
        &self.store
    }

    /// Inserts a fact; returns `true` if it was not already present.
    pub fn insert(&mut self, fact: Fact) -> bool {
        self.store.insert(fact.rel, &fact.args).is_new()
    }

    /// Inserts a fact given by relation and arguments.
    pub fn insert_tuple(&mut self, rel: RelId, args: impl AsRef<[Value]>) -> bool {
        self.store.insert(rel, args.as_ref()).is_new()
    }

    /// Removes a fact; returns `true` if it was present.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        self.store.retract(fact.rel, &fact.args).is_some()
    }

    /// Does the instance contain the fact? O(1) expected.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.store.contains(fact.rel, &fact.args)
    }

    /// Does the instance contain the tuple under `rel`? O(1) expected.
    pub fn contains_tuple(&self, rel: RelId, args: &[Value]) -> bool {
        self.store.contains(rel, args)
    }

    /// Total number of facts. O(1) — cached on the store.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Is the instance empty? O(1).
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Iterates over all facts in deterministic sorted `(rel, tuple)`
    /// order, as borrowed views. Allocates one id vector for the sort;
    /// per-fact data is borrowed from the store.
    pub fn facts(&self) -> impl Iterator<Item = FactRef<'_>> + '_ {
        self.store.sorted_ids().into_iter().map(move |id| FactRef {
            rel: self.store.rel_of(id),
            args: self.store.tuple(id),
        })
    }

    /// Iterates over all facts relation-sorted but otherwise in insertion
    /// order — zero allocation. Use where enumeration order is
    /// irrelevant (aggregations, rebuilds into order-insensitive sets).
    pub fn facts_unordered(&self) -> impl Iterator<Item = FactRef<'_>> + '_ {
        self.store
            .iter()
            .map(|(_, rel, args)| FactRef { rel, args })
    }

    /// The tuples of one relation in sorted order (borrowed slices).
    pub fn tuples(&self, rel: RelId) -> impl Iterator<Item = &[Value]> + '_ {
        let mut rows: Vec<&[Value]> = self.store.iter_rel(rel).map(|(_, t)| t).collect();
        rows.sort_unstable();
        rows.into_iter()
    }

    /// Number of tuples in one relation.
    pub fn rel_len(&self, rel: RelId) -> usize {
        self.store.rel_len(rel)
    }

    /// The relations with at least one tuple, sorted.
    pub fn active_relations(&self) -> impl Iterator<Item = RelId> + '_ {
        self.store.active_relations()
    }

    /// The active domain: all values occurring in some fact.
    pub fn adom(&self) -> BTreeSet<Value> {
        self.facts_unordered()
            .flat_map(|f| f.args.iter().copied())
            .collect()
    }

    /// The labeled nulls occurring in the instance.
    pub fn nulls(&self) -> BTreeSet<NullId> {
        self.facts_unordered()
            .flat_map(|f| f.args.iter().filter_map(|v| v.as_null()))
            .collect()
    }

    /// Does the instance consist of constants only (a valid source instance)?
    pub fn is_ground(&self) -> bool {
        self.facts_unordered()
            .all(|f| f.args.iter().all(|v| v.is_const()))
    }

    /// Applies a value mapping to every fact, producing a new instance.
    /// This is the action of a function `h` on an instance: `h(J)`.
    pub fn map_values(&self, h: &dyn Fn(Value) -> Value) -> Instance {
        let mut out = Instance::new();
        let mut buf = Vec::new();
        for f in self.facts_unordered() {
            buf.clear();
            buf.extend(f.args.iter().map(|&v| h(v)));
            out.insert_tuple(f.rel, &buf);
        }
        out
    }

    /// Unions another instance into this one.
    pub fn extend(&mut self, other: &Instance) {
        for f in other.facts_unordered() {
            self.store.insert(f.rel, f.args);
        }
    }

    /// The subinstance of facts satisfying the predicate.
    pub fn filter(&self, keep: &dyn Fn(FactRef<'_>) -> bool) -> Instance {
        let mut out = Instance::new();
        for f in self.facts_unordered() {
            if keep(f) {
                out.insert_tuple(f.rel, f.args);
            }
        }
        out
    }

    /// Is `self` a subinstance of `other` (fact-set inclusion)?
    pub fn is_subinstance_of(&self, other: &Instance) -> bool {
        self.len() <= other.len()
            && self
                .facts_unordered()
                .all(|f| other.contains_tuple(f.rel, f.args))
    }

    /// Renders all facts separated by `, `, in deterministic sorted order.
    pub fn display(&self, syms: &SymbolTable) -> String {
        self.facts()
            .map(|f| f.display(syms).to_string())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .facts_unordered()
                .all(|f| other.contains_tuple(f.rel, f.args))
    }
}

impl Eq for Instance {}

impl FromIterator<Fact> for Instance {
    fn from_iter<T: IntoIterator<Item = Fact>>(iter: T) -> Self {
        Instance::from_facts(iter)
    }
}

/// The serialized shape of an instance — kept bit-identical to the
/// original `BTreeMap<RelId, BTreeSet<Vec<Value>>>` derive so stored
/// experiment artifacts and goldens survive the columnar refactor.
#[derive(Serialize, Deserialize)]
struct InstanceRepr {
    rels: BTreeMap<RelId, BTreeSet<Vec<Value>>>,
}

impl Serialize for Instance {
    fn to_value(&self) -> serde::Value {
        let mut rels: BTreeMap<RelId, BTreeSet<Vec<Value>>> = BTreeMap::new();
        for f in self.facts_unordered() {
            rels.entry(f.rel).or_default().insert(f.args.to_vec());
        }
        InstanceRepr { rels }.to_value()
    }
}

impl Deserialize for Instance {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let repr = InstanceRepr::from_value(v)?;
        let mut inst = Instance::new();
        for (rel, tuples) in repr.rels {
            for t in tuples {
                inst.insert_tuple(rel, t);
            }
        }
        Ok(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;
    use crate::value::NullId;

    fn setup() -> (SymbolTable, RelId, Value, Value, Value) {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let n = Value::Null(NullId(0));
        (syms, r, a, b, n)
    }

    #[test]
    fn insert_contains_len() {
        let (_syms, r, a, b, _) = setup();
        let mut i = Instance::new();
        assert!(i.insert_tuple(r, vec![a, b]));
        assert!(!i.insert_tuple(r, vec![a, b]));
        assert!(i.contains_tuple(r, &[a, b]));
        assert!(!i.contains_tuple(r, &[b, a]));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn remove_cleans_up_relation() {
        let (_syms, r, a, b, _) = setup();
        let mut i = Instance::new();
        i.insert_tuple(r, vec![a, b]);
        let f = Fact::new(r, vec![a, b]);
        assert!(i.remove(&f));
        assert!(i.is_empty());
        assert!(!i.remove(&f));
    }

    #[test]
    fn adom_and_nulls() {
        let (_syms, r, a, b, n) = setup();
        let mut i = Instance::new();
        i.insert_tuple(r, vec![a, n]);
        i.insert_tuple(r, vec![b, b]);
        assert_eq!(i.adom().len(), 3);
        assert_eq!(i.nulls().len(), 1);
        assert!(!i.is_ground());
        let ground = i.filter(&|f| f.args.iter().all(|v| v.is_const()));
        assert!(ground.is_ground());
        assert_eq!(ground.len(), 1);
    }

    #[test]
    fn map_values_applies_homomorphism_action() {
        let (_syms, r, a, _b, n) = setup();
        let mut i = Instance::new();
        i.insert_tuple(r, vec![n, a]);
        let mapped = i.map_values(&|v| if v == n { a } else { v });
        assert!(mapped.contains_tuple(r, &[a, a]));
        assert_eq!(mapped.len(), 1);
    }

    #[test]
    fn subinstance_check() {
        let (_syms, r, a, b, _) = setup();
        let mut big = Instance::new();
        big.insert_tuple(r, vec![a, b]);
        big.insert_tuple(r, vec![b, a]);
        let small = Instance::from_facts([Fact::new(r, vec![a, b])]);
        assert!(small.is_subinstance_of(&big));
        assert!(!big.is_subinstance_of(&small));
    }

    #[test]
    fn extend_unions_facts() {
        let (_syms, r, a, b, _) = setup();
        let mut i = Instance::from_facts([Fact::new(r, vec![a, a])]);
        let j = Instance::from_facts([Fact::new(r, vec![b, b]), Fact::new(r, vec![a, a])]);
        i.extend(&j);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn display_is_deterministic() {
        let (syms, r, a, b, _) = setup();
        let i = Instance::from_facts([Fact::new(r, vec![b, a]), Fact::new(r, vec![a, b])]);
        assert_eq!(i.display(&syms), "R(a,b), R(b,a)");
    }

    #[test]
    fn facts_are_sorted_borrowed_views() {
        let (_syms, r, a, b, _) = setup();
        let i = Instance::from_facts([Fact::new(r, vec![b, a]), Fact::new(r, vec![a, b])]);
        let seen: Vec<Fact> = i.facts().map(|f| f.to_fact()).collect();
        assert_eq!(
            seen,
            vec![Fact::new(r, vec![a, b]), Fact::new(r, vec![b, a])]
        );
        // Equality is insertion-order independent.
        let j = Instance::from_facts([Fact::new(r, vec![a, b]), Fact::new(r, vec![b, a])]);
        assert_eq!(i, j);
    }

    #[test]
    fn reinsert_after_remove_roundtrips() {
        let (_syms, r, a, b, _) = setup();
        let mut i = Instance::new();
        i.insert_tuple(r, vec![a, b]);
        i.remove(&Fact::new(r, vec![a, b]));
        assert!(i.insert_tuple(r, vec![a, b]));
        assert_eq!(i.len(), 1);
        assert!(i.contains_tuple(r, &[a, b]));
    }
}
