//! Instances: finite relations over constants and labeled nulls.
//!
//! Deterministic iteration order (B-trees throughout) so that printed
//! figures, tests and experiment logs are stable across runs.

use crate::symbol::{RelId, SymbolTable};
use crate::value::{NullId, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A fact `R(v1, ..., vk)` of an instance.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Fact {
    /// The relation symbol.
    pub rel: RelId,
    /// The tuple of values.
    pub args: Vec<Value>,
}

impl Fact {
    /// Creates a fact.
    pub fn new(rel: RelId, args: impl Into<Vec<Value>>) -> Self {
        Fact {
            rel,
            args: args.into(),
        }
    }

    /// The labeled nulls occurring in this fact (deduplicated, ordered).
    pub fn nulls(&self) -> BTreeSet<NullId> {
        self.args.iter().filter_map(|v| v.as_null()).collect()
    }

    /// Renders the fact, e.g. `R(a,_N0)`.
    pub fn display<'a>(&'a self, syms: &'a SymbolTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Fact, &'a SymbolTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}(", self.1.rel_name(self.0.rel))?;
                for (i, v) in self.0.args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", v.display(self.1))?;
                }
                write!(f, ")")
            }
        }
        D(self, syms)
    }
}

/// A finite instance: a set of facts grouped by relation.
#[derive(Clone, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Instance {
    rels: BTreeMap<RelId, BTreeSet<Vec<Value>>>,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an instance from an iterator of facts.
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> Self {
        let mut inst = Instance::new();
        for f in facts {
            inst.insert(f);
        }
        inst
    }

    /// Inserts a fact; returns `true` if it was not already present.
    pub fn insert(&mut self, fact: Fact) -> bool {
        self.rels.entry(fact.rel).or_default().insert(fact.args)
    }

    /// Inserts a fact given by relation and arguments.
    pub fn insert_tuple(&mut self, rel: RelId, args: impl Into<Vec<Value>>) -> bool {
        self.rels.entry(rel).or_default().insert(args.into())
    }

    /// Removes a fact; returns `true` if it was present.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        if let Some(set) = self.rels.get_mut(&fact.rel) {
            let removed = set.remove(&fact.args);
            if set.is_empty() {
                self.rels.remove(&fact.rel);
            }
            removed
        } else {
            false
        }
    }

    /// Does the instance contain the fact?
    pub fn contains(&self, fact: &Fact) -> bool {
        self.rels
            .get(&fact.rel)
            .is_some_and(|s| s.contains(&fact.args))
    }

    /// Does the instance contain the tuple under `rel`?
    pub fn contains_tuple(&self, rel: RelId, args: &[Value]) -> bool {
        self.rels.get(&rel).is_some_and(|s| s.contains(args))
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.rels.values().map(BTreeSet::len).sum()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Iterates over all facts in deterministic order.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.rels.iter().flat_map(|(&rel, tuples)| {
            tuples.iter().map(move |args| Fact {
                rel,
                args: args.clone(),
            })
        })
    }

    /// The tuples of one relation (empty slice semantics via empty iterator).
    pub fn tuples(&self, rel: RelId) -> impl Iterator<Item = &Vec<Value>> + '_ {
        self.rels.get(&rel).into_iter().flatten()
    }

    /// Number of tuples in one relation.
    pub fn rel_len(&self, rel: RelId) -> usize {
        self.rels.get(&rel).map_or(0, BTreeSet::len)
    }

    /// The relations with at least one tuple.
    pub fn active_relations(&self) -> impl Iterator<Item = RelId> + '_ {
        self.rels.keys().copied()
    }

    /// The active domain: all values occurring in some fact.
    pub fn adom(&self) -> BTreeSet<Value> {
        self.rels
            .values()
            .flatten()
            .flat_map(|t| t.iter().copied())
            .collect()
    }

    /// The labeled nulls occurring in the instance.
    pub fn nulls(&self) -> BTreeSet<NullId> {
        self.rels
            .values()
            .flatten()
            .flat_map(|t| t.iter().filter_map(|v| v.as_null()))
            .collect()
    }

    /// Does the instance consist of constants only (a valid source instance)?
    pub fn is_ground(&self) -> bool {
        self.rels
            .values()
            .flatten()
            .all(|t| t.iter().all(|v| v.is_const()))
    }

    /// Applies a value mapping to every fact, producing a new instance.
    /// This is the action of a function `h` on an instance: `h(J)`.
    pub fn map_values(&self, h: &dyn Fn(Value) -> Value) -> Instance {
        let mut out = Instance::new();
        for (&rel, tuples) in &self.rels {
            for t in tuples {
                out.insert_tuple(rel, t.iter().map(|&v| h(v)).collect::<Vec<_>>());
            }
        }
        out
    }

    /// Unions another instance into this one.
    pub fn extend(&mut self, other: &Instance) {
        for (&rel, tuples) in &other.rels {
            let set = self.rels.entry(rel).or_default();
            for t in tuples {
                set.insert(t.clone());
            }
        }
    }

    /// The subinstance of facts satisfying the predicate.
    pub fn filter(&self, keep: &dyn Fn(&Fact) -> bool) -> Instance {
        Instance::from_facts(self.facts().filter(|f| keep(f)))
    }

    /// Is `self` a subinstance of `other` (fact-set inclusion)?
    pub fn is_subinstance_of(&self, other: &Instance) -> bool {
        self.rels
            .iter()
            .all(|(rel, tuples)| other.rels.get(rel).is_some_and(|os| tuples.is_subset(os)))
    }

    /// Renders all facts separated by `, `, in deterministic order.
    pub fn display(&self, syms: &SymbolTable) -> String {
        self.facts()
            .map(|f| f.display(syms).to_string())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl FromIterator<Fact> for Instance {
    fn from_iter<T: IntoIterator<Item = Fact>>(iter: T) -> Self {
        Instance::from_facts(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;
    use crate::value::NullId;

    fn setup() -> (SymbolTable, RelId, Value, Value, Value) {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let n = Value::Null(NullId(0));
        (syms, r, a, b, n)
    }

    #[test]
    fn insert_contains_len() {
        let (_syms, r, a, b, _) = setup();
        let mut i = Instance::new();
        assert!(i.insert_tuple(r, vec![a, b]));
        assert!(!i.insert_tuple(r, vec![a, b]));
        assert!(i.contains_tuple(r, &[a, b]));
        assert!(!i.contains_tuple(r, &[b, a]));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn remove_cleans_up_relation() {
        let (_syms, r, a, b, _) = setup();
        let mut i = Instance::new();
        i.insert_tuple(r, vec![a, b]);
        let f = Fact::new(r, vec![a, b]);
        assert!(i.remove(&f));
        assert!(i.is_empty());
        assert!(!i.remove(&f));
    }

    #[test]
    fn adom_and_nulls() {
        let (_syms, r, a, b, n) = setup();
        let mut i = Instance::new();
        i.insert_tuple(r, vec![a, n]);
        i.insert_tuple(r, vec![b, b]);
        assert_eq!(i.adom().len(), 3);
        assert_eq!(i.nulls().len(), 1);
        assert!(!i.is_ground());
        let ground = i.filter(&|f| f.args.iter().all(|v| v.is_const()));
        assert!(ground.is_ground());
        assert_eq!(ground.len(), 1);
    }

    #[test]
    fn map_values_applies_homomorphism_action() {
        let (_syms, r, a, _b, n) = setup();
        let mut i = Instance::new();
        i.insert_tuple(r, vec![n, a]);
        let mapped = i.map_values(&|v| if v == n { a } else { v });
        assert!(mapped.contains_tuple(r, &[a, a]));
        assert_eq!(mapped.len(), 1);
    }

    #[test]
    fn subinstance_check() {
        let (_syms, r, a, b, _) = setup();
        let mut big = Instance::new();
        big.insert_tuple(r, vec![a, b]);
        big.insert_tuple(r, vec![b, a]);
        let small = Instance::from_facts([Fact::new(r, vec![a, b])]);
        assert!(small.is_subinstance_of(&big));
        assert!(!big.is_subinstance_of(&small));
    }

    #[test]
    fn extend_unions_facts() {
        let (_syms, r, a, b, _) = setup();
        let mut i = Instance::from_facts([Fact::new(r, vec![a, a])]);
        let j = Instance::from_facts([Fact::new(r, vec![b, b]), Fact::new(r, vec![a, a])]);
        i.extend(&j);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn display_is_deterministic() {
        let (syms, r, a, b, _) = setup();
        let i = Instance::from_facts([Fact::new(r, vec![b, a]), Fact::new(r, vec![a, b])]);
        assert_eq!(i.display(&syms), "R(a,b), R(b,a)");
    }
}
