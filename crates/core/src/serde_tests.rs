//! Serde round-trip tests: instances, dependencies and mappings serialize
//! to JSON and back unchanged — the machine-readable experiment-log format
//! used by the bench harness (see DESIGN.md §5).

#![cfg(test)]

use crate::prelude::*;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn instance_roundtrip() {
    let mut syms = SymbolTable::new();
    let r = syms.rel("R");
    let a = Value::Const(syms.constant("a"));
    let inst = Instance::from_facts([
        Fact::new(r, vec![a, Value::Null(NullId(3))]),
        Fact::new(r, vec![a, a]),
    ]);
    assert_eq!(roundtrip(&inst), inst);
}

#[test]
fn nested_tgd_roundtrip() {
    let mut syms = SymbolTable::new();
    let t = parse_nested_tgd(
        &mut syms,
        "forall x1 (S1(x1) -> exists y (forall x2 (S2(x2) -> R(y,x2))))",
    )
    .unwrap();
    assert_eq!(roundtrip(&t), t);
}

#[test]
fn so_tgd_and_egd_roundtrip() {
    let mut syms = SymbolTable::new();
    let so = parse_so_tgd(
        &mut syms,
        "exists f . Emp(e) -> Mgr(e,f(e)) ; Emp(e) & e = f(e) -> SelfMgr(e)",
    )
    .unwrap();
    assert_eq!(roundtrip(&so), so);
    let egd = parse_egd(&mut syms, "S(x,y) & S(x2,y) -> x = x2").unwrap();
    assert_eq!(roundtrip(&egd), egd);
}

#[test]
fn mapping_roundtrip() {
    let mut syms = SymbolTable::new();
    let m = NestedMapping::parse(
        &mut syms,
        &["S(x,y) -> exists z R(x,z)"],
        &["S(x,y) & S(x2,y) -> x = x2"],
    )
    .unwrap();
    let back: NestedMapping = roundtrip(&m);
    assert_eq!(back.tgds, m.tgds);
    assert_eq!(back.source_egds, m.source_egds);
}

#[test]
fn symbol_table_roundtrip_preserves_names() {
    let mut syms = SymbolTable::new();
    let r = syms.rel("Emp");
    let c = syms.constant("alice");
    let back: SymbolTable = roundtrip(&syms);
    assert_eq!(back.rel_name(r), "Emp");
    assert_eq!(back.const_name(c), "alice");
    assert_eq!(back.find_rel("Emp"), Some(r));
}
