//! Arena-backed columnar fact storage: the representation every engine in
//! the workspace now bottoms out in.
//!
//! A [`FactStore`] keeps, per relation, one flat arity-strided
//! `Vec<Value>` column: the tuple of row `r` occupies
//! `data[r*arity .. (r+1)*arity]`. Facts are deduplicated on insert via an
//! Fx hash bucket map in O(1) expected time, and each distinct fact gets a
//! dense, **stable** [`FactId`] that survives retraction: removal is a
//! tombstone (a cleared liveness bit), and re-inserting a retracted fact
//! *revives* its original id rather than allocating a new one. Stable ids
//! are what let the shared `(rel, pos, value)` posting index and the
//! incremental core engine's retraction worklist refer to facts across
//! mutations without rehashing full tuples.
//!
//! Rules of the representation:
//! - **FactId stability**: an id, once assigned, always denotes the same
//!   `(relation, tuple)` pair — live or dead — until [`FactStore::compact`]
//!   explicitly rebuilds the arena (the only operation that invalidates
//!   ids, and one no engine calls mid-search).
//! - **Tombstones**: retraction clears a liveness bit in O(1); columns and
//!   posting lists keep the row in place and readers filter through
//!   [`FactStore::is_live`].
//! - **Revival**: the dedup map is append-only, so a retract/re-insert
//!   cycle returns the original id ([`Inserted::Revived`]) and the store
//!   never holds two rows for one fact.
//! - **Determinism**: iteration is relation-sorted and row-ordered
//!   (= first-insertion-ordered); fully sorted enumeration is available
//!   via [`FactStore::sorted_ids`] for display and index builds.
//!
//! The store also keeps always-on [`StoreCounters`] (inserts, dedup hits,
//! tombstones, revivals, compactions) — plain `u64` increments on paths
//! that already touch the same cache lines, cheap enough to never gate.

use crate::hash::{FxBuildHasher, FxHashMap};
use crate::symbol::RelId;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::hash::BuildHasher;

/// Dense, stable id of a fact inside a [`FactStore`]. Ids are assigned in
/// first-insertion order and survive retraction (tombstones) — only
/// [`FactStore::compact`] renumbers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FactId(pub u32);

impl FactId {
    /// The id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Store-level event counters: always-on observability for the storage
/// layer, surfaced through `ndl-obs` chase statistics.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StoreCounters {
    /// Fresh rows appended to a column.
    pub inserts: u64,
    /// Insert attempts answered by an existing live row.
    pub dedup_hits: u64,
    /// Live rows tombstoned by retraction.
    pub tombstones: u64,
    /// Tombstoned rows brought back live by re-insertion.
    pub revivals: u64,
    /// Arena rebuilds that dropped tombstones and renumbered ids.
    pub compactions: u64,
    /// Dedup hash-map capacity growths (rehash-and-move cycles). Zero when
    /// the store was pre-sized large enough via
    /// [`FactStore::with_capacity`].
    pub rehashes: u64,
    /// Slot-arena reallocations (the `FactId → slot` vector regrowing).
    /// Zero when the store was pre-sized large enough.
    pub regrows: u64,
}

/// A small vector of [`FactId`]s that stores up to five ids inline before
/// spilling to the heap — posting lists and dedup buckets are almost
/// always tiny, and the inline form is exactly the size of an empty `Vec`.
#[derive(Clone, Debug)]
pub enum SmallIdVec {
    /// Up to five ids stored in place.
    Inline {
        /// Number of occupied slots in `buf`.
        len: u8,
        /// Inline storage; only `buf[..len]` is meaningful.
        buf: [FactId; 5],
    },
    /// Heap storage once the sixth id arrives.
    Spilled(Vec<FactId>),
}

impl Default for SmallIdVec {
    #[inline]
    fn default() -> Self {
        SmallIdVec::Inline {
            len: 0,
            buf: [FactId(0); 5],
        }
    }
}

impl SmallIdVec {
    /// Appends an id, spilling to the heap on overflow.
    #[inline]
    pub fn push(&mut self, id: FactId) {
        match self {
            SmallIdVec::Inline { len, buf } => {
                if (*len as usize) < buf.len() {
                    buf[*len as usize] = id;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(8);
                    v.extend_from_slice(&buf[..]);
                    v.push(id);
                    *self = SmallIdVec::Spilled(v);
                }
            }
            SmallIdVec::Spilled(v) => v.push(id),
        }
    }

    /// The ids as a slice, in insertion order.
    #[inline]
    pub fn as_slice(&self) -> &[FactId] {
        match self {
            SmallIdVec::Inline { len, buf } => &buf[..*len as usize],
            SmallIdVec::Spilled(v) => v.as_slice(),
        }
    }

    /// Number of stored ids.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Is the vector empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One relation's arena: a flat arity-strided value column plus the ids of
/// its rows.
#[derive(Clone, Debug)]
struct Column {
    /// Fixed tuple width of this relation.
    arity: usize,
    /// Row-major tuple cells; row `r` is `data[r*arity..(r+1)*arity]`.
    data: Vec<Value>,
    /// `row → FactId`, in insertion order (dead rows included).
    ids: Vec<FactId>,
    /// Number of live rows.
    live: usize,
}

impl Column {
    fn new(arity: usize) -> Self {
        Column {
            arity,
            data: Vec::new(),
            ids: Vec::new(),
            live: 0,
        }
    }

    #[inline]
    fn row(&self, row: u32) -> &[Value] {
        let a = self.arity;
        let start = row as usize * a;
        &self.data[start..start + a]
    }

    fn rows(&self) -> usize {
        self.ids.len()
    }
}

/// Outcome of a [`FactStore::insert`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Inserted {
    /// The fact was new; a fresh row and id were allocated.
    Fresh(FactId),
    /// The fact existed as a tombstone; its original id is live again.
    Revived(FactId),
    /// The fact was already live; nothing changed.
    Present(FactId),
}

impl Inserted {
    /// The id of the fact, however the insert resolved.
    #[inline]
    pub fn id(self) -> FactId {
        match self {
            Inserted::Fresh(id) | Inserted::Revived(id) | Inserted::Present(id) => id,
        }
    }

    /// Did the store gain a live fact (fresh row or revival)?
    #[inline]
    pub fn is_new(self) -> bool {
        !matches!(self, Inserted::Present(_))
    }
}

/// The arena-backed columnar fact store. See the module docs for the
/// representation rules (id stability, tombstones, revival, determinism).
#[derive(Clone, Debug, Default)]
pub struct FactStore {
    /// Per-relation columns, relation-sorted for deterministic iteration.
    cols: BTreeMap<RelId, Column>,
    /// `FactId → (relation, row)` back-pointers, dead ids included.
    slots: Vec<(RelId, u32)>,
    /// Liveness bits parallel to `slots`.
    live: Vec<bool>,
    /// `hash(rel, tuple) → candidate ids` dedup buckets (append-only).
    dedup: FxHashMap<u64, SmallIdVec>,
    /// Cached number of live facts — `len()` is O(1).
    live_count: usize,
    /// Always-on storage event counters.
    counters: StoreCounters,
    /// Delta-frontier watermark: ids `>= frontier_start` were allocated
    /// since the last [`FactStore::mark_frontier`]. Ids are dense and
    /// increasing, so the frontier of any relation is a contiguous suffix
    /// of its row-id list. Starts at 0 (everything is frontier).
    frontier_start: u32,
}

impl FactStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store pre-sized for roughly `facts` rows — the
    /// chase planner passes its predicted chase size here so hot loops
    /// avoid rehash-and-grow cycles.
    pub fn with_capacity(facts: usize) -> Self {
        FactStore {
            slots: Vec::with_capacity(facts),
            live: Vec::with_capacity(facts),
            dedup: FxHashMap::with_capacity_and_hasher(facts, FxBuildHasher::default()),
            ..Self::default()
        }
    }

    #[inline]
    fn hash_tuple(rel: RelId, args: &[Value]) -> u64 {
        FxBuildHasher::default().hash_one((rel, args))
    }

    /// Inserts a fact; O(1) expected. Returns whether the row is fresh,
    /// revived, or was already live — with its stable id in every case.
    pub fn insert(&mut self, rel: RelId, args: &[Value]) -> Inserted {
        let h = Self::hash_tuple(rel, args);
        if let Some(bucket) = self.dedup.get(&h) {
            let found = bucket
                .as_slice()
                .iter()
                .copied()
                .find(|&id| self.slots[id.index()].0 == rel && self.tuple(id) == args);
            if let Some(id) = found {
                if self.live[id.index()] {
                    self.counters.dedup_hits += 1;
                    return Inserted::Present(id);
                }
                self.live[id.index()] = true;
                self.live_count += 1;
                self.counters.revivals += 1;
                self.cols
                    .get_mut(&rel)
                    .expect("column of an assigned id")
                    .live += 1;
                return Inserted::Revived(id);
            }
        }
        let id = FactId(u32::try_from(self.slots.len()).expect("fact arena overflow"));
        let col = self
            .cols
            .entry(rel)
            .or_insert_with(|| Column::new(args.len()));
        assert_eq!(
            col.arity,
            args.len(),
            "relation arity changed between inserts"
        );
        let row = u32::try_from(col.rows()).expect("column overflow");
        col.data.extend_from_slice(args);
        col.ids.push(id);
        col.live += 1;
        // Capacity snapshots prove (or disprove) that pre-sizing worked:
        // a changed capacity after the push is a rehash/regrow event.
        let dedup_cap = self.dedup.capacity();
        let slots_cap = self.slots.capacity();
        self.slots.push((rel, row));
        self.live.push(true);
        self.live_count += 1;
        self.counters.inserts += 1;
        self.dedup.entry(h).or_default().push(id);
        if self.dedup.capacity() != dedup_cap {
            self.counters.rehashes += 1;
        }
        if self.slots.capacity() != slots_cap {
            self.counters.regrows += 1;
        }
        Inserted::Fresh(id)
    }

    /// Looks up the id of a fact, live rows only.
    pub fn lookup(&self, rel: RelId, args: &[Value]) -> Option<FactId> {
        self.lookup_row(rel, args)
            .filter(|id| self.live[id.index()])
    }

    /// Looks up the id of a fact, tombstones included.
    fn lookup_row(&self, rel: RelId, args: &[Value]) -> Option<FactId> {
        let h = Self::hash_tuple(rel, args);
        let bucket = self.dedup.get(&h)?;
        bucket
            .as_slice()
            .iter()
            .copied()
            .find(|&id| self.slots[id.index()].0 == rel && self.tuple(id) == args)
    }

    /// Is the fact live in the store? O(1) expected.
    #[inline]
    pub fn contains(&self, rel: RelId, args: &[Value]) -> bool {
        self.lookup(rel, args).is_some()
    }

    /// Tombstones a live fact by id; returns `false` if it was already
    /// dead. O(1).
    pub fn retract_id(&mut self, id: FactId) -> bool {
        if !self.live[id.index()] {
            return false;
        }
        self.live[id.index()] = false;
        self.live_count -= 1;
        let (rel, _) = self.slots[id.index()];
        self.cols
            .get_mut(&rel)
            .expect("column of an assigned id")
            .live -= 1;
        self.counters.tombstones += 1;
        true
    }

    /// Tombstones a live fact by value; returns its id if it was live.
    pub fn retract(&mut self, rel: RelId, args: &[Value]) -> Option<FactId> {
        let id = self.lookup(rel, args)?;
        self.retract_id(id);
        Some(id)
    }

    /// Number of live facts. O(1) — the count is cached across mutations.
    #[inline]
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Is the store empty (no live facts)? O(1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Number of live facts of `rel`.
    pub fn rel_len(&self, rel: RelId) -> usize {
        self.cols.get(&rel).map_or(0, |c| c.live)
    }

    /// The tuple width of `rel`, if the relation has ever held a fact.
    pub fn arity(&self, rel: RelId) -> Option<usize> {
        self.cols.get(&rel).map(|c| c.arity)
    }

    /// Is the id live?
    #[inline]
    pub fn is_live(&self, id: FactId) -> bool {
        self.live[id.index()]
    }

    /// The tuple stored under `id` (live or dead) as a borrowed view.
    #[inline]
    pub fn tuple(&self, id: FactId) -> &[Value] {
        let (rel, row) = self.slots[id.index()];
        self.cols
            .get(&rel)
            .expect("column of an assigned id")
            .row(row)
    }

    /// The relation of the fact stored under `id` (live or dead).
    #[inline]
    pub fn rel_of(&self, id: FactId) -> RelId {
        self.slots[id.index()].0
    }

    /// Total rows ever allocated (live + tombstoned).
    pub fn rows(&self) -> usize {
        self.slots.len()
    }

    /// The relations with at least one live fact, sorted.
    pub fn active_relations(&self) -> impl Iterator<Item = RelId> + '_ {
        self.cols
            .iter()
            .filter(|&(_, c)| c.live > 0)
            .map(|(&rel, _)| rel)
    }

    /// All row ids of `rel` in insertion order, tombstones included —
    /// filter through [`FactStore::is_live`].
    pub fn rel_row_ids(&self, rel: RelId) -> &[FactId] {
        self.cols.get(&rel).map_or(&[][..], |c| c.ids.as_slice())
    }

    /// Iterates the live facts of one relation in insertion order.
    pub fn iter_rel(&self, rel: RelId) -> impl Iterator<Item = (FactId, &[Value])> + '_ {
        self.cols.get(&rel).into_iter().flat_map(move |col| {
            col.ids
                .iter()
                .enumerate()
                .filter(|&(_, id)| self.live[id.index()])
                .map(move |(row, &id)| (id, col.row(row as u32)))
        })
    }

    /// Iterates all live facts, relation-sorted and insertion-ordered
    /// within each relation. Zero allocation.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, RelId, &[Value])> + '_ {
        self.cols.iter().flat_map(move |(&rel, col)| {
            col.ids
                .iter()
                .enumerate()
                .filter(|&(_, id)| self.live[id.index()])
                .map(move |(row, &id)| (id, rel, col.row(row as u32)))
        })
    }

    /// The live ids in fully sorted `(relation, tuple)` order — the
    /// deterministic enumeration used for display, serialization and
    /// index builds. Allocates one id vector.
    pub fn sorted_ids(&self) -> Vec<FactId> {
        let mut out = Vec::with_capacity(self.live_count);
        for col in self.cols.values() {
            let start = out.len();
            out.extend(col.ids.iter().copied().filter(|id| self.live[id.index()]));
            out[start..].sort_unstable_by(|&a, &b| {
                let ra = self.slots[a.index()].1;
                let rb = self.slots[b.index()].1;
                col.row(ra).cmp(col.row(rb))
            });
        }
        out
    }

    /// The store's event counters.
    #[inline]
    pub fn counters(&self) -> StoreCounters {
        self.counters
    }

    /// Advances the delta-frontier watermark past every currently
    /// allocated row: after this call the frontier is exactly the rows
    /// allocated by *future* inserts (until the next mark). The semi-naive
    /// chase calls this when it commits a round, so "the frontier" is
    /// always "the previous round's fresh facts".
    ///
    /// Contract: a [`FactId`] enters the frontier when it is **freshly
    /// allocated** after the mark. Tombstoning does not remove an id from
    /// the frontier (readers filter liveness separately), and a *revival*
    /// of a pre-mark id does not add it — revived rows keep their original
    /// position below the watermark. Engines that retract mid-chase must
    /// therefore not rely on frontiers alone; the chase never retracts.
    /// [`FactStore::compact`] renumbers ids and resets the watermark to 0
    /// (everything becomes frontier again — the conservative choice).
    #[inline]
    pub fn mark_frontier(&mut self) {
        self.frontier_start = u32::try_from(self.slots.len()).expect("fact arena overflow");
    }

    /// The current watermark: ids `>= frontier_start()` are in the
    /// frontier.
    #[inline]
    pub fn frontier_start(&self) -> u32 {
        self.frontier_start
    }

    /// Is the id in the current frontier (allocated since the last
    /// [`FactStore::mark_frontier`])? Liveness is not consulted.
    #[inline]
    pub fn in_frontier(&self, id: FactId) -> bool {
        id.0 >= self.frontier_start
    }

    /// The frontier rows of `rel`: the suffix of [`FactStore::rel_row_ids`]
    /// allocated since the last mark. Row-id lists only ever append ids in
    /// increasing order, so the frontier is found by binary search —
    /// O(log rows), not O(rows).
    pub fn rel_frontier(&self, rel: RelId) -> &[FactId] {
        let ids = self.rel_row_ids(rel);
        let cut = ids.partition_point(|id| id.0 < self.frontier_start);
        &ids[cut..]
    }

    /// Rebuilds the arena without tombstones, renumbering every id —
    /// the one operation that invalidates outstanding [`FactId`]s.
    pub fn compact(&mut self) {
        let old = std::mem::take(self);
        let compactions = old.counters.compactions + 1;
        let mut fresh = FactStore::with_capacity(old.len());
        for (_, rel, args) in old.iter() {
            fresh.insert(rel, args);
        }
        // Compaction is a representation change, not workload activity:
        // carry the original counters forward and record the rebuild.
        fresh.counters = old.counters;
        fresh.counters.compactions = compactions;
        *self = fresh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;
    use crate::value::NullId;

    fn setup() -> (SymbolTable, RelId, Value, Value, Value) {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let n = Value::Null(NullId(0));
        (syms, r, a, b, n)
    }

    #[test]
    fn insert_dedup_and_counters() {
        let (_syms, r, a, b, _) = setup();
        let mut s = FactStore::new();
        let i1 = s.insert(r, &[a, b]);
        assert!(matches!(i1, Inserted::Fresh(FactId(0))));
        let i2 = s.insert(r, &[a, b]);
        assert_eq!(i2, Inserted::Present(FactId(0)));
        assert!(!i2.is_new());
        assert_eq!(s.len(), 1);
        assert_eq!(s.counters().inserts, 1);
        assert_eq!(s.counters().dedup_hits, 1);
    }

    #[test]
    fn tombstone_and_revival_keep_ids_stable() {
        let (_syms, r, a, b, _) = setup();
        let mut s = FactStore::new();
        let id = s.insert(r, &[a, b]).id();
        s.insert(r, &[b, a]);
        assert_eq!(s.retract(r, &[a, b]), Some(id));
        assert!(!s.is_live(id));
        assert_eq!(s.len(), 1);
        assert_eq!(s.rel_len(r), 1);
        // The tombstoned tuple is still addressable by id.
        assert_eq!(s.tuple(id), &[a, b]);
        assert!(!s.contains(r, &[a, b]));
        // Re-insertion revives the original id; no second row appears.
        let back = s.insert(r, &[a, b]);
        assert_eq!(back, Inserted::Revived(id));
        assert_eq!(s.rows(), 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.counters().tombstones, 1);
        assert_eq!(s.counters().revivals, 1);
    }

    #[test]
    fn columns_are_arity_strided() {
        let (mut syms, r, a, b, n) = setup();
        let c = Value::Const(syms.constant("c"));
        let mut s = FactStore::new();
        let i0 = s.insert(r, &[a, b]).id();
        let i1 = s.insert(r, &[b, c]).id();
        let i2 = s.insert(r, &[c, n]).id();
        assert_eq!(s.tuple(i0), &[a, b]);
        assert_eq!(s.tuple(i1), &[b, c]);
        assert_eq!(s.tuple(i2), &[c, n]);
        assert_eq!(s.arity(r), Some(2));
        assert_eq!(s.rel_row_ids(r), &[i0, i1, i2]);
    }

    #[test]
    fn iteration_is_rel_sorted_and_insertion_ordered() {
        let (mut syms, r, a, b, _) = setup();
        let q = syms.rel("Q");
        let mut s = FactStore::new();
        s.insert(r, &[b, a]);
        s.insert(q, &[a]);
        s.insert(r, &[a, b]);
        let seen: Vec<(RelId, Vec<Value>)> =
            s.iter().map(|(_, rel, t)| (rel, t.to_vec())).collect();
        // Relation-sorted (R interned before Q), rows in insertion order.
        assert_eq!(seen, vec![(r, vec![b, a]), (r, vec![a, b]), (q, vec![a])]);
        // sorted_ids re-sorts rows within each relation.
        let sorted: Vec<Vec<Value>> = s
            .sorted_ids()
            .iter()
            .map(|&id| s.tuple(id).to_vec())
            .collect();
        assert_eq!(sorted, vec![vec![a, b], vec![b, a], vec![a]]);
    }

    #[test]
    fn compact_drops_tombstones_and_renumbers() {
        let (_syms, r, a, b, _) = setup();
        let mut s = FactStore::new();
        s.insert(r, &[a, a]);
        s.insert(r, &[a, b]);
        s.insert(r, &[b, b]);
        s.retract(r, &[a, b]);
        s.compact();
        assert_eq!(s.rows(), 2);
        assert_eq!(s.len(), 2);
        assert!(s.contains(r, &[a, a]));
        assert!(s.contains(r, &[b, b]));
        assert!(!s.contains(r, &[a, b]));
        assert_eq!(s.counters().compactions, 1);
        // Original workload counters survive the rebuild.
        assert_eq!(s.counters().inserts, 3);
        assert_eq!(s.counters().tombstones, 1);
    }

    #[test]
    fn small_id_vec_spills_transparently() {
        let mut v = SmallIdVec::default();
        assert!(v.is_empty());
        for i in 0..12u32 {
            v.push(FactId(i));
        }
        assert_eq!(v.len(), 12);
        assert_eq!(v.as_slice()[11], FactId(11));
        assert_eq!(v.as_slice()[0], FactId(0));
    }

    #[test]
    fn frontier_is_a_suffix_of_row_ids() {
        let (mut syms, r, a, b, _) = setup();
        let q = syms.rel("Q");
        let mut s = FactStore::new();
        let i0 = s.insert(r, &[a, a]).id();
        let i1 = s.insert(r, &[a, b]).id();
        // Before any mark, everything is frontier.
        assert_eq!(s.frontier_start(), 0);
        assert_eq!(s.rel_frontier(r), &[i0, i1]);
        assert!(s.in_frontier(i0));
        s.mark_frontier();
        // After the mark the frontier is empty until new rows arrive.
        assert_eq!(s.rel_frontier(r), &[] as &[FactId]);
        assert!(!s.in_frontier(i1));
        let i2 = s.insert(r, &[b, b]).id();
        let i3 = s.insert(q, &[a]).id();
        assert_eq!(s.rel_frontier(r), &[i2]);
        assert_eq!(s.rel_frontier(q), &[i3]);
        assert!(s.in_frontier(i2));
        // Dedup hits and revivals of pre-mark rows do not enter the
        // frontier; only freshly allocated ids do.
        assert_eq!(s.insert(r, &[a, b]), Inserted::Present(i1));
        s.retract_id(i0);
        assert_eq!(s.insert(r, &[a, a]), Inserted::Revived(i0));
        assert_eq!(s.rel_frontier(r), &[i2]);
        // Compaction renumbers and conservatively resets the watermark.
        s.compact();
        assert_eq!(s.frontier_start(), 0);
        assert_eq!(s.rel_frontier(r).len(), s.rel_len(r));
    }

    #[test]
    fn presized_store_reports_no_rehash_or_regrow() {
        let (mut syms, r, _, _, _) = setup();
        let vals: Vec<Value> = (0..256)
            .map(|i| Value::Const(syms.constant(&format!("c{i}"))))
            .collect();
        let mut presized = FactStore::with_capacity(300);
        let mut bare = FactStore::new();
        for &v in &vals {
            presized.insert(r, &[v]);
            bare.insert(r, &[v]);
        }
        assert_eq!(presized.counters().rehashes, 0);
        assert_eq!(presized.counters().regrows, 0);
        // The un-sized store grows repeatedly on the same workload — the
        // counters are what make the difference observable.
        assert!(bare.counters().regrows > 0);
        assert!(bare.counters().rehashes > 0);
    }

    #[test]
    fn zero_arity_relations() {
        let mut syms = SymbolTable::new();
        let p = syms.rel("P");
        let mut s = FactStore::new();
        let id = s.insert(p, &[]).id();
        assert_eq!(s.insert(p, &[]), Inserted::Present(id));
        assert_eq!(s.tuple(id), &[] as &[Value]);
        assert_eq!(s.len(), 1);
    }
}
