//! Domain values of instances: constants and labeled nulls.
//!
//! Following the paper (Section 2), source instances contain only constants;
//! target instances may contain constants and labeled nulls. Nulls are
//! created by the chase and are in bijection with ground Skolem terms (see
//! [`crate::term::GroundTerm`] and the `NullFactory` in `ndl-chase`).

use crate::symbol::{ConstId, SymbolTable};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a labeled null. Nulls are scoped to a factory
/// (typically one per chase run / reasoning session).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NullId(pub u32);

impl NullId {
    /// Index into dense per-null arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NullId({})", self.0)
    }
}

/// A value in the active domain of an instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Value {
    /// A constant; homomorphisms are the identity on constants.
    Const(ConstId),
    /// A labeled null; homomorphisms may map nulls to any value.
    Null(NullId),
}

impl Value {
    /// Is this value a constant?
    #[inline]
    pub fn is_const(self) -> bool {
        matches!(self, Value::Const(_))
    }

    /// Is this value a labeled null?
    #[inline]
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// The null id, if this is a null.
    #[inline]
    pub fn as_null(self) -> Option<NullId> {
        match self {
            Value::Null(n) => Some(n),
            Value::Const(_) => None,
        }
    }

    /// The constant id, if this is a constant.
    #[inline]
    pub fn as_const(self) -> Option<ConstId> {
        match self {
            Value::Const(c) => Some(c),
            Value::Null(_) => None,
        }
    }

    /// Renders the value using `syms` for constants; nulls print as `_Nk`.
    /// For Skolem-term-labeled nulls, prefer the chase result's display
    /// helpers which print the ground term (e.g. `f(a_1)`).
    pub fn display<'a>(&'a self, syms: &'a SymbolTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Value, &'a SymbolTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self.0 {
                    Value::Const(c) => write!(f, "{}", self.1.const_name(*c)),
                    Value::Null(n) => write!(f, "_N{}", n.0),
                }
            }
        }
        D(self, syms)
    }
}

impl From<ConstId> for Value {
    fn from(c: ConstId) -> Self {
        Value::Const(c)
    }
}

impl From<NullId> for Value {
    fn from(n: NullId) -> Self {
        Value::Null(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_kind_predicates() {
        let c = Value::Const(ConstId(0));
        let n = Value::Null(NullId(3));
        assert!(c.is_const() && !c.is_null());
        assert!(n.is_null() && !n.is_const());
        assert_eq!(n.as_null(), Some(NullId(3)));
        assert_eq!(c.as_const(), Some(ConstId(0)));
        assert_eq!(c.as_null(), None);
        assert_eq!(n.as_const(), None);
    }

    #[test]
    fn display_constant_and_null() {
        let mut syms = SymbolTable::new();
        let a = syms.constant("alice");
        assert_eq!(Value::Const(a).display(&syms).to_string(), "alice");
        assert_eq!(Value::Null(NullId(7)).display(&syms).to_string(), "_N7");
    }

    #[test]
    fn ordering_groups_constants_before_nulls() {
        // Relied upon by deterministic printing in figures.
        let c = Value::Const(ConstId(9));
        let n = Value::Null(NullId(0));
        assert!(c < n);
    }
}
