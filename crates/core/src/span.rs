//! Byte spans into dependency source text, the substrate of all spanned
//! diagnostics (lexer tokens, parse errors, lint findings).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range `start..end` into a source string.
///
/// Offsets index bytes, not characters; the dependency syntax is ASCII, so
/// the two coincide for well-formed input. An empty span (`start == end`)
/// marks a point, e.g. an unexpected-end-of-input parse error.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span; `start <= end` is the caller's responsibility.
    pub fn new(start: usize, end: usize) -> Span {
        debug_assert!(start <= end, "span {start}..{end} is inverted");
        Span { start, end }
    }

    /// A zero-width span marking a single position.
    pub fn point(offset: usize) -> Span {
        Span {
            start: offset,
            end: offset,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is this a zero-width point span?
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The smallest span covering both `self` and `other`.
    pub fn cover(&self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Shifts both endpoints by `base` — used to relocate a span produced
    /// against a single statement into the enclosing file.
    pub fn offset_by(&self, base: usize) -> Span {
        Span {
            start: self.start + base,
            end: self.end + base,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_queries() {
        let s = Span::new(3, 7);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(Span::point(5).is_empty());
        assert_eq!(s.to_string(), "3..7");
    }

    #[test]
    fn cover_and_offset() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.cover(b), Span::new(2, 9));
        assert_eq!(a.offset_by(10), Span::new(12, 15));
    }
}
