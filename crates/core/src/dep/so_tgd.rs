//! Second-order tuple-generating dependencies (SO tgds) and the *plain*
//! fragment (Section 2 of the paper).
//!
//! An SO tgd is `∃f⃗ ((∀x⃗1 (φ1 → ψ1)) ∧ … ∧ (∀x⃗n (φn → ψn)))` where each
//! φᵢ is a conjunction of source atoms over variables and equalities between
//! terms, and each ψᵢ is a conjunction of target atoms over terms. A *plain*
//! SO tgd has no nested terms and no equalities.

use crate::atom::{Atom, TermAtom};
use crate::error::{push_unique, CoreError, Result};
use crate::schema::{Schema, Side};
use crate::symbol::{FuncId, SymbolTable, VarId};
use crate::term::Term;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One conjunct `∀x⃗ᵢ (φᵢ → ψᵢ)` of an SO tgd.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SoClause {
    /// Relational source atoms of φᵢ (variables only, per the definition).
    pub body: Vec<Atom>,
    /// Equalities `t = t'` of φᵢ (empty for plain SO tgds).
    pub equalities: Vec<(Term, Term)>,
    /// Target atoms ψᵢ over terms.
    pub head: Vec<TermAtom>,
}

impl SoClause {
    /// Creates a clause.
    pub fn new(
        body: impl Into<Vec<Atom>>,
        equalities: impl Into<Vec<(Term, Term)>>,
        head: impl Into<Vec<TermAtom>>,
    ) -> Self {
        SoClause {
            body: body.into(),
            equalities: equalities.into(),
            head: head.into(),
        }
    }

    /// The universal variables of the clause: variables of the body atoms,
    /// first-occurrence order.
    pub fn universals(&self) -> Vec<VarId> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for a in &self.body {
            for &v in &a.args {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

/// An SO tgd `∃f⃗ (clause₁ ∧ … ∧ clauseₙ)`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SoTgd {
    /// The existentially quantified function symbols f⃗.
    pub funcs: Vec<FuncId>,
    /// The conjoined clauses.
    pub clauses: Vec<SoClause>,
}

impl SoTgd {
    /// Creates an SO tgd; use [`SoTgd::validate`] to check well-formedness.
    pub fn new(funcs: impl Into<Vec<FuncId>>, clauses: impl Into<Vec<SoClause>>) -> Self {
        SoTgd {
            funcs: funcs.into(),
            clauses: clauses.into(),
        }
    }

    /// Is this a *plain* SO tgd: no nested terms and no equalities?
    pub fn is_plain(&self) -> bool {
        self.clauses
            .iter()
            .all(|c| c.equalities.is_empty() && !c.head.iter().any(TermAtom::has_nested_term))
    }

    /// The function symbols actually occurring in the formula (heads or
    /// equalities) — the quantity `v` used by IMPLIES (line 2) counts these.
    pub fn occurring_funcs(&self) -> BTreeSet<FuncId> {
        let mut out = Vec::new();
        for c in &self.clauses {
            for ta in &c.head {
                for t in &ta.args {
                    t.collect_funcs(&mut out);
                }
            }
            for (l, r) in &c.equalities {
                l.collect_funcs(&mut out);
                r.collect_funcs(&mut out);
            }
        }
        out.into_iter().collect()
    }

    /// Maximum number of universal variables in any clause.
    pub fn max_clause_universals(&self) -> usize {
        self.clauses
            .iter()
            .map(|c| c.universals().len())
            .max()
            .unwrap_or(0)
    }

    /// Validates well-formedness and declares relations in `schema`:
    /// every clause has a nonempty body; every variable of a clause occurs
    /// in some body atom (condition 4 of the definition); every function
    /// symbol used is quantified; sides are consistent.
    pub fn validate(&self, schema: &mut Schema) -> Result<()> {
        let mut errs = Vec::new();
        self.check(schema, &mut errs);
        match errs.into_iter().next() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Collects every validation problem of this SO tgd into `out` (the
    /// diagnostics framework entry point). A clause with an empty body is
    /// reported and skipped — its variables would all be spuriously
    /// unbound.
    pub fn check(&self, schema: &mut Schema, out: &mut Vec<CoreError>) {
        let declared: BTreeSet<_> = self.funcs.iter().copied().collect();
        for (i, c) in self.clauses.iter().enumerate() {
            if c.body.is_empty() {
                push_unique(
                    out,
                    CoreError::Invalid(format!("clause {i} has an empty body")),
                );
                continue;
            }
            for a in &c.body {
                if let Err(e) = schema.declare(a.rel, a.args.len(), Side::Source) {
                    push_unique(out, e);
                }
            }
            for ta in &c.head {
                if let Err(e) = schema.declare(ta.rel, ta.args.len(), Side::Target) {
                    push_unique(out, e);
                }
            }
            let bound: BTreeSet<_> = c.universals().into_iter().collect();
            let mut used_vars = Vec::new();
            let mut used_funcs = Vec::new();
            for ta in &c.head {
                for t in &ta.args {
                    t.collect_vars(&mut used_vars);
                    t.collect_funcs(&mut used_funcs);
                }
            }
            for (l, r) in &c.equalities {
                l.collect_vars(&mut used_vars);
                r.collect_vars(&mut used_vars);
                l.collect_funcs(&mut used_funcs);
                r.collect_funcs(&mut used_funcs);
            }
            for v in used_vars {
                if !bound.contains(&v) {
                    push_unique(out, CoreError::UnboundVariable { var: v });
                }
            }
            for f in used_funcs {
                if !declared.contains(&f) {
                    push_unique(
                        out,
                        CoreError::Invalid(format!(
                            "function symbol {f:?} not existentially quantified"
                        )),
                    );
                }
            }
        }
    }

    /// Renders the SO tgd; clauses are separated by ` ; `, e.g.
    /// `exists f . S(x,y) -> R(f(x),f(y))`.
    pub fn display(&self, syms: &SymbolTable) -> String {
        let fs = self
            .funcs
            .iter()
            .map(|&f| syms.func_name(f))
            .collect::<Vec<_>>()
            .join(",");
        let clauses = self
            .clauses
            .iter()
            .map(|c| {
                let mut body: Vec<String> =
                    c.body.iter().map(|a| a.display(syms).to_string()).collect();
                body.extend(
                    c.equalities
                        .iter()
                        .map(|(l, r)| format!("{} = {}", l.display(syms), r.display(syms))),
                );
                let head = if c.head.is_empty() {
                    "true".to_string()
                } else {
                    c.head
                        .iter()
                        .map(|a| a.display(syms).to_string())
                        .collect::<Vec<_>>()
                        .join(" & ")
                };
                format!("{} -> {}", body.join(" & "), head)
            })
            .collect::<Vec<_>>()
            .join(" ; ");
        if fs.is_empty() {
            clauses
        } else {
            format!("exists {fs} . {clauses}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `∃f ∀x∀y (S(x,y) → R(f(x),f(y)))` — the plain SO tgd of Section 1,
    /// known not to be equivalent to any finite set of nested tgds.
    fn succ_example(syms: &mut SymbolTable) -> SoTgd {
        let s = syms.rel("S");
        let r = syms.rel("R");
        let x = syms.var("x");
        let y = syms.var("y");
        let f = syms.func("f");
        SoTgd::new(
            vec![f],
            vec![SoClause::new(
                vec![Atom::new(s, vec![x, y])],
                vec![],
                vec![TermAtom::new(
                    r,
                    vec![
                        Term::app(f, vec![Term::Var(x)]),
                        Term::app(f, vec![Term::Var(y)]),
                    ],
                )],
            )],
        )
    }

    #[test]
    fn plainness() {
        let mut syms = SymbolTable::new();
        let t = succ_example(&mut syms);
        assert!(t.is_plain());
        // Add an equality -> not plain.
        let mut t2 = t.clone();
        let x = syms.var("x");
        let f = t.funcs[0];
        t2.clauses[0]
            .equalities
            .push((Term::Var(x), Term::app(f, vec![Term::Var(x)])));
        assert!(!t2.is_plain());
        // Nested term -> not plain.
        let mut t3 = t.clone();
        t3.clauses[0].head[0].args[0] = Term::app(f, vec![Term::app(f, vec![Term::Var(x)])]);
        assert!(!t3.is_plain());
    }

    #[test]
    fn occurring_funcs_and_universals() {
        let mut syms = SymbolTable::new();
        let t = succ_example(&mut syms);
        assert_eq!(t.occurring_funcs().len(), 1);
        assert_eq!(t.max_clause_universals(), 2);
    }

    #[test]
    fn validate_succ_example() {
        let mut syms = SymbolTable::new();
        let t = succ_example(&mut syms);
        let mut sch = Schema::new();
        t.validate(&mut sch).unwrap();
    }

    #[test]
    fn validate_rejects_unquantified_function() {
        let mut syms = SymbolTable::new();
        let mut t = succ_example(&mut syms);
        t.funcs.clear();
        let mut sch = Schema::new();
        assert!(t.validate(&mut sch).is_err());
    }

    #[test]
    fn validate_rejects_unbound_head_var() {
        let mut syms = SymbolTable::new();
        let mut t = succ_example(&mut syms);
        let z = syms.var("z");
        t.clauses[0].head[0].args[0] = Term::Var(z);
        let mut sch = Schema::new();
        assert_eq!(
            t.validate(&mut sch),
            Err(CoreError::UnboundVariable { var: z })
        );
    }

    #[test]
    fn display_shape() {
        let mut syms = SymbolTable::new();
        let t = succ_example(&mut syms);
        assert_eq!(t.display(&syms), "exists f . S(x,y) -> R(f(x),f(y))");
    }

    #[test]
    fn self_mgr_example_is_not_plain() {
        // The Emp/Mgr/SelfMgr SO tgd of Section 2 uses an equality.
        let mut syms = SymbolTable::new();
        let emp = syms.rel("Emp");
        let mgr = syms.rel("Mgr");
        let selfm = syms.rel("SelfMgr");
        let e = syms.var("e");
        let f = syms.func("f");
        let t = SoTgd::new(
            vec![f],
            vec![
                SoClause::new(
                    vec![Atom::new(emp, vec![e])],
                    vec![],
                    vec![TermAtom::new(
                        mgr,
                        vec![Term::Var(e), Term::app(f, vec![Term::Var(e)])],
                    )],
                ),
                SoClause::new(
                    vec![Atom::new(emp, vec![e])],
                    vec![(Term::Var(e), Term::app(f, vec![Term::Var(e)]))],
                    vec![TermAtom::from_vars(selfm, &[e])],
                ),
            ],
        );
        let mut sch = Schema::new();
        t.validate(&mut sch).unwrap();
        assert!(!t.is_plain());
    }
}
