//! Dependency classes of the paper: s-t tgds (GLAV), nested tgds
//! (nested GLAV), second-order tgds (SO tgds, with the *plain* fragment),
//! and equality-generating dependencies (egds) over the source schema.

pub mod egd;
pub mod nested;
pub mod so_tgd;
pub mod st_tgd;

pub use egd::Egd;
pub use nested::{NestedTgd, Part, PartId};
pub use so_tgd::{SoClause, SoTgd};
pub use st_tgd::StTgd;
