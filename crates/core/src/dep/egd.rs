//! Equality-generating dependencies (egds) over the source schema, and key
//! dependencies as the special case used in Section 5 of the paper.

use crate::atom::Atom;
use crate::error::{push_unique, CoreError, Result};
use crate::schema::{Schema, Side};
use crate::symbol::{RelId, SymbolTable, VarId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An egd `∀x⃗ (φ(x⃗) → x = x')` with φ a conjunction of source atoms.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Egd {
    /// Body φ: a nonempty conjunction of source atoms.
    pub body: Vec<Atom>,
    /// The equated variables, both of which must occur in the body.
    pub eq: (VarId, VarId),
}

impl Egd {
    /// Creates an egd.
    pub fn new(body: impl Into<Vec<Atom>>, eq: (VarId, VarId)) -> Self {
        Egd {
            body: body.into(),
            eq,
        }
    }

    /// Builds the egds expressing that `key_positions` of `rel` form a key:
    /// two tuples agreeing on all key positions agree on every other
    /// position. One egd per non-key position.
    ///
    /// Example: the "unique predecessor" key dependency of Theorem 5.1 is
    /// `key(S, [1])`, asserting `S(x,y) ∧ S(x',y) → x = x'`.
    pub fn key(
        syms: &mut SymbolTable,
        rel: RelId,
        arity: usize,
        key_positions: &[usize],
    ) -> Vec<Egd> {
        let keyset: BTreeSet<usize> = key_positions.iter().copied().collect();
        let xs: Vec<VarId> = (0..arity)
            .map(|i| syms.fresh_var(&format!("k{i}")))
            .collect();
        let xs2: Vec<VarId> = (0..arity)
            .map(|i| {
                if keyset.contains(&i) {
                    xs[i]
                } else {
                    syms.fresh_var(&format!("k{i}p"))
                }
            })
            .collect();
        (0..arity)
            .filter(|i| !keyset.contains(i))
            .map(|i| {
                Egd::new(
                    vec![Atom::new(rel, xs.clone()), Atom::new(rel, xs2.clone())],
                    (xs[i], xs2[i]),
                )
            })
            .collect()
    }

    /// Validates the egd and declares its relations as source-side. Stops
    /// at the first problem; [`Egd::check`] collects them all.
    pub fn validate(&self, schema: &mut Schema) -> Result<()> {
        let mut errs = Vec::new();
        self.check(schema, &mut errs);
        match errs.into_iter().next() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Collects every validation problem of this egd into `out` (the
    /// diagnostics framework entry point).
    pub fn check(&self, schema: &mut Schema, out: &mut Vec<CoreError>) {
        if self.body.is_empty() {
            push_unique(out, CoreError::Invalid("egd with empty body".into()));
            return;
        }
        for a in &self.body {
            if let Err(e) = schema.declare(a.rel, a.args.len(), Side::Source) {
                push_unique(out, e);
            }
        }
        let body_vars: BTreeSet<_> = self
            .body
            .iter()
            .flat_map(|a| a.args.iter().copied())
            .collect();
        for v in [self.eq.0, self.eq.1] {
            if !body_vars.contains(&v) {
                push_unique(out, CoreError::UnboundVariable { var: v });
            }
        }
    }

    /// Renders the egd, e.g. `P1(z,x) & P1(z,x2) -> x = x2`.
    pub fn display(&self, syms: &SymbolTable) -> String {
        let body = self
            .body
            .iter()
            .map(|a| a.display(syms).to_string())
            .collect::<Vec<_>>()
            .join(" & ");
        format!(
            "{body} -> {} = {}",
            syms.var_name(self.eq.0),
            syms.var_name(self.eq.1)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_dependency_generation() {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let egds = Egd::key(&mut syms, s, 2, &[1]);
        assert_eq!(egds.len(), 1);
        let mut sch = Schema::new();
        egds[0].validate(&mut sch).unwrap();
        // The two body atoms share the key position variable.
        assert_eq!(egds[0].body[0].args[1], egds[0].body[1].args[1]);
        assert_ne!(egds[0].body[0].args[0], egds[0].body[1].args[0]);
        assert_eq!(
            egds[0].eq,
            (egds[0].body[0].args[0], egds[0].body[1].args[0])
        );
    }

    #[test]
    fn key_with_all_positions_is_trivial() {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        assert!(Egd::key(&mut syms, s, 2, &[0, 1]).is_empty());
    }

    #[test]
    fn validate_rejects_unbound_equated_var() {
        let mut syms = SymbolTable::new();
        let p = syms.rel("P");
        let x = syms.var("x");
        let z = syms.var("z");
        let egd = Egd::new(vec![Atom::new(p, vec![x])], (x, z));
        let mut sch = Schema::new();
        assert_eq!(
            egd.validate(&mut sch),
            Err(CoreError::UnboundVariable { var: z })
        );
    }

    #[test]
    fn display_shape() {
        let mut syms = SymbolTable::new();
        let p = syms.rel("P1");
        let z = syms.var("z");
        let x = syms.var("x1");
        let x2 = syms.var("x1p");
        let egd = Egd::new(
            vec![Atom::new(p, vec![z, x]), Atom::new(p, vec![z, x2])],
            (x, x2),
        );
        assert_eq!(egd.display(&syms), "P1(z,x1) & P1(z,x1p) -> x1 = x1p");
    }
}
