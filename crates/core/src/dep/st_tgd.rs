//! Source-to-target tuple-generating dependencies (s-t tgds / GLAV
//! constraints), Section 2 of the paper:
//! `∀x⃗ (φ(x⃗) → ∃y⃗ ψ(x⃗, y⃗))`.

use crate::atom::Atom;
use crate::error::{push_unique, CoreError, Result};
use crate::schema::{Schema, Side};
use crate::symbol::{SymbolTable, VarId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An s-t tgd `∀x⃗ (φ(x⃗) → ∃y⃗ ψ(x⃗, y⃗))`.
///
/// The universal variables are exactly the variables of the body; the
/// safety condition (each universal variable occurs in some body atom) holds
/// by construction.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StTgd {
    /// Body φ: a nonempty conjunction of source atoms.
    pub body: Vec<Atom>,
    /// Existential variables y⃗ (may be empty).
    pub existentials: Vec<VarId>,
    /// Head ψ: a conjunction of target atoms over body vars and y⃗.
    pub head: Vec<Atom>,
}

impl StTgd {
    /// Creates an s-t tgd; use [`StTgd::validate`] to check well-formedness.
    pub fn new(
        body: impl Into<Vec<Atom>>,
        existentials: impl Into<Vec<VarId>>,
        head: impl Into<Vec<Atom>>,
    ) -> Self {
        StTgd {
            body: body.into(),
            existentials: existentials.into(),
            head: head.into(),
        }
    }

    /// The universal variables: all variables of the body, in first-occurrence
    /// order.
    pub fn universals(&self) -> Vec<VarId> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for a in &self.body {
            for &v in &a.args {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Validates well-formedness and declares relations in `schema`:
    /// nonempty body, head variables bound, existentials distinct from
    /// universals, source/target sides consistent. Stops at the first
    /// problem; [`StTgd::check`] collects them all.
    pub fn validate(&self, schema: &mut Schema) -> Result<()> {
        let mut errs = Vec::new();
        self.check(schema, &mut errs);
        match errs.into_iter().next() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Collects every validation problem of this tgd into `out` (the
    /// diagnostics framework entry point), declaring relations in `schema`
    /// as a side effect.
    pub fn check(&self, schema: &mut Schema, out: &mut Vec<CoreError>) {
        if self.body.is_empty() {
            push_unique(out, CoreError::Invalid("s-t tgd with empty body".into()));
            return;
        }
        for a in &self.body {
            if let Err(e) = schema.declare(a.rel, a.args.len(), Side::Source) {
                push_unique(out, e);
            }
        }
        for a in &self.head {
            if let Err(e) = schema.declare(a.rel, a.args.len(), Side::Target) {
                push_unique(out, e);
            }
        }
        let universals: BTreeSet<_> = self.universals().into_iter().collect();
        let existentials: BTreeSet<_> = self.existentials.iter().copied().collect();
        if existentials.len() != self.existentials.len() {
            push_unique(
                out,
                CoreError::Invalid("duplicate existential variable".into()),
            );
        }
        for &v in universals.intersection(&existentials) {
            push_unique(out, CoreError::ShadowedVariable { var: v });
        }
        for a in &self.head {
            for &v in &a.args {
                if !universals.contains(&v) && !existentials.contains(&v) {
                    push_unique(out, CoreError::UnboundVariable { var: v });
                }
            }
        }
    }

    /// Renders the tgd in the paper's (quantifier-suppressed) notation,
    /// e.g. `S(x1,x2) -> exists y (R(y,x2))`.
    pub fn display(&self, syms: &SymbolTable) -> String {
        let body = self
            .body
            .iter()
            .map(|a| a.display(syms).to_string())
            .collect::<Vec<_>>()
            .join(" & ");
        let head = if self.head.is_empty() {
            "true".to_string()
        } else {
            self.head
                .iter()
                .map(|a| a.display(syms).to_string())
                .collect::<Vec<_>>()
                .join(" & ")
        };
        if self.existentials.is_empty() {
            format!("{body} -> {head}")
        } else {
            let ys = self
                .existentials
                .iter()
                .map(|&v| syms.var_name(v))
                .collect::<Vec<_>>()
                .join(",");
            format!("{body} -> exists {ys} ({head})")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> (SymbolTable, StTgd) {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let r = syms.rel("R");
        let x = syms.var("x");
        let y = syms.var("y");
        let z = syms.var("z");
        let tgd = StTgd::new(
            vec![Atom::new(s, vec![x, y])],
            vec![z],
            vec![Atom::new(r, vec![x, z])],
        );
        (syms, tgd)
    }

    #[test]
    fn universals_in_order() {
        let (mut syms, tgd) = build();
        let x = syms.var("x");
        let y = syms.var("y");
        assert_eq!(tgd.universals(), vec![x, y]);
    }

    #[test]
    fn validate_accepts_well_formed() {
        let (_syms, tgd) = build();
        let mut sch = Schema::new();
        tgd.validate(&mut sch).unwrap();
        assert_eq!(sch.side(tgd.body[0].rel), Some(Side::Source));
        assert_eq!(sch.side(tgd.head[0].rel), Some(Side::Target));
    }

    #[test]
    fn validate_rejects_unbound_head_var() {
        let (mut syms, mut tgd) = build();
        let w = syms.var("w");
        tgd.head[0].args[1] = w;
        tgd.existentials.clear();
        let mut sch = Schema::new();
        assert_eq!(
            tgd.validate(&mut sch),
            Err(CoreError::UnboundVariable { var: w })
        );
    }

    #[test]
    fn validate_rejects_shadowing() {
        let (mut syms, mut tgd) = build();
        let x = syms.var("x");
        tgd.existentials = vec![x];
        let mut sch = Schema::new();
        assert_eq!(
            tgd.validate(&mut sch),
            Err(CoreError::ShadowedVariable { var: x })
        );
    }

    #[test]
    fn validate_rejects_empty_body() {
        let tgd = StTgd::new(vec![], vec![], vec![]);
        let mut sch = Schema::new();
        assert!(tgd.validate(&mut sch).is_err());
    }

    #[test]
    fn display_shape() {
        let (syms, tgd) = build();
        assert_eq!(tgd.display(&syms), "S(x,y) -> exists z (R(x,z))");
    }
}
