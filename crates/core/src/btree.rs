//! The original B-tree-backed instance representation, preserved verbatim.
//!
//! [`Instance`](crate::instance::Instance) replaced this layout with the
//! columnar arena [`FactStore`](crate::store::FactStore); this module keeps
//! the old `BTreeMap<RelId, BTreeSet<Vec<Value>>>` container so that
//! - property tests can assert the two representations are observationally
//!   equivalent on random operation sequences, and
//! - `bench_store` can measure the speedup against the same baseline that
//!   produced the committed pre-refactor benchmark numbers.
//!
//! Not intended for production callers — use [`crate::instance::Instance`].

use crate::instance::Fact;
use crate::symbol::{RelId, SymbolTable};
use crate::value::{NullId, Value};
use std::collections::{BTreeMap, BTreeSet};

/// A finite instance stored as per-relation B-tree sets (the pre-columnar
/// layout): log-time dedup per insert, one heap allocation per tuple.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BTreeInstance {
    rels: BTreeMap<RelId, BTreeSet<Vec<Value>>>,
}

impl BTreeInstance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an instance from an iterator of facts.
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> Self {
        let mut inst = BTreeInstance::new();
        for f in facts {
            inst.insert(f);
        }
        inst
    }

    /// Inserts a fact; returns `true` if it was not already present.
    pub fn insert(&mut self, fact: Fact) -> bool {
        self.rels.entry(fact.rel).or_default().insert(fact.args)
    }

    /// Inserts a fact given by relation and arguments.
    pub fn insert_tuple(&mut self, rel: RelId, args: impl Into<Vec<Value>>) -> bool {
        self.rels.entry(rel).or_default().insert(args.into())
    }

    /// Removes a fact; returns `true` if it was present.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        if let Some(set) = self.rels.get_mut(&fact.rel) {
            let removed = set.remove(&fact.args);
            if set.is_empty() {
                self.rels.remove(&fact.rel);
            }
            removed
        } else {
            false
        }
    }

    /// Does the instance contain the fact?
    pub fn contains(&self, fact: &Fact) -> bool {
        self.rels
            .get(&fact.rel)
            .is_some_and(|s| s.contains(&fact.args))
    }

    /// Does the instance contain the tuple under `rel`?
    pub fn contains_tuple(&self, rel: RelId, args: &[Value]) -> bool {
        self.rels.get(&rel).is_some_and(|s| s.contains(args))
    }

    /// Total number of facts (summed per relation on every call).
    pub fn len(&self) -> usize {
        self.rels.values().map(BTreeSet::len).sum()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Iterates over all facts in sorted order, cloning each tuple.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.rels.iter().flat_map(|(&rel, tuples)| {
            tuples.iter().map(move |args| Fact {
                rel,
                args: args.clone(),
            })
        })
    }

    /// The tuples of one relation.
    pub fn tuples(&self, rel: RelId) -> impl Iterator<Item = &Vec<Value>> + '_ {
        self.rels.get(&rel).into_iter().flatten()
    }

    /// Number of tuples in one relation.
    pub fn rel_len(&self, rel: RelId) -> usize {
        self.rels.get(&rel).map_or(0, BTreeSet::len)
    }

    /// The relations with at least one tuple.
    pub fn active_relations(&self) -> impl Iterator<Item = RelId> + '_ {
        self.rels.keys().copied()
    }

    /// The active domain: all values occurring in some fact.
    pub fn adom(&self) -> BTreeSet<Value> {
        self.rels
            .values()
            .flatten()
            .flat_map(|t| t.iter().copied())
            .collect()
    }

    /// The labeled nulls occurring in the instance.
    pub fn nulls(&self) -> BTreeSet<NullId> {
        self.rels
            .values()
            .flatten()
            .flat_map(|t| t.iter().filter_map(|v| v.as_null()))
            .collect()
    }

    /// Does the instance consist of constants only?
    pub fn is_ground(&self) -> bool {
        self.rels
            .values()
            .flatten()
            .all(|t| t.iter().all(|v| v.is_const()))
    }

    /// Applies a value mapping to every fact, producing a new instance.
    pub fn map_values(&self, h: &dyn Fn(Value) -> Value) -> BTreeInstance {
        let mut out = BTreeInstance::new();
        for (&rel, tuples) in &self.rels {
            for t in tuples {
                out.insert_tuple(rel, t.iter().map(|&v| h(v)).collect::<Vec<_>>());
            }
        }
        out
    }

    /// Unions another instance into this one.
    pub fn extend(&mut self, other: &BTreeInstance) {
        for (&rel, tuples) in &other.rels {
            let set = self.rels.entry(rel).or_default();
            for t in tuples {
                set.insert(t.clone());
            }
        }
    }

    /// The subinstance of facts satisfying the predicate.
    pub fn filter(&self, keep: &dyn Fn(&Fact) -> bool) -> BTreeInstance {
        BTreeInstance::from_facts(self.facts().filter(|f| keep(f)))
    }

    /// Is `self` a subinstance of `other` (fact-set inclusion)?
    pub fn is_subinstance_of(&self, other: &BTreeInstance) -> bool {
        self.rels
            .iter()
            .all(|(rel, tuples)| other.rels.get(rel).is_some_and(|os| tuples.is_subset(os)))
    }

    /// Renders all facts separated by `, `, in sorted order.
    pub fn display(&self, syms: &SymbolTable) -> String {
        self.facts()
            .map(|f| f.display(syms).to_string())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl FromIterator<Fact> for BTreeInstance {
    fn from_iter<T: IntoIterator<Item = Fact>>(iter: T) -> Self {
        BTreeInstance::from_facts(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;
    use crate::value::Value;

    #[test]
    fn baseline_semantics_preserved() {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let mut i = BTreeInstance::new();
        assert!(i.insert_tuple(r, vec![b, a]));
        assert!(i.insert_tuple(r, vec![a, b]));
        assert!(!i.insert_tuple(r, vec![a, b]));
        assert_eq!(i.len(), 2);
        assert_eq!(i.display(&syms), "R(a,b), R(b,a)");
        assert!(i.remove(&Fact::new(r, vec![a, b])));
        assert!(i.remove(&Fact::new(r, vec![b, a])));
        assert!(i.is_empty());
    }
}
