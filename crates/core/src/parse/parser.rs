//! Recursive-descent parser for the textual dependency syntax.
//!
//! Grammar (informal):
//!
//! ```text
//! nested   := [forall VARS] atoms '->' conclusion          (top level)
//! conclusion := [exists VARS] chi ('&' chi)*
//! chi      := ATOM | 'true'
//!           | forall VARS '(' atoms '->' conclusion ')'     (nested part)
//!           | forall VARS atoms '->' conclusion             (greedy form)
//!           | '(' atoms '->' conclusion ')'                 (part w/o own ∀)
//!           | '(' chi ('&' chi)* ')'                        (grouping)
//! so_tgd   := [exists FUNCS '.'] clause (';' clause)*
//! clause   := (ATOM | term '=' term) ('&' ...)* '->' (TERMATOM ('&' ...)* | 'true')
//! egd      := atoms '->' VAR '=' VAR
//! ```
//!
//! At the top level (only), universally quantified variables may be left
//! implicit: `S(x,y) -> exists z R(x,z)` quantifies `x, y` universally.
//! Nested parts must quantify their own variables explicitly (they may have
//! none, as in Example 3.4 of the paper).

use crate::atom::{Atom, TermAtom};
use crate::dep::egd::Egd;
use crate::dep::nested::{NestedTgd, Part};
use crate::dep::so_tgd::{SoClause, SoTgd};
use crate::dep::st_tgd::StTgd;
use crate::error::{CoreError, Result};
use crate::parse::lexer::{lex, Spanned, Tok};
use crate::symbol::{SymbolTable, VarId};
use crate::term::Term;

struct Parser<'a> {
    toks: Vec<Spanned>,
    pos: usize,
    syms: &'a mut SymbolTable,
}

/// Parsed tree node before arena conversion.
struct PNode {
    universals: Vec<VarId>,
    body: Vec<Atom>,
    existentials: Vec<VarId>,
    head: Vec<Atom>,
    children: Vec<PNode>,
}

impl<'a> Parser<'a> {
    fn new(input: &str, syms: &'a mut SymbolTable) -> Result<Self> {
        Ok(Parser {
            toks: lex(input)?,
            pos: 0,
            syms,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or_else(|| self.toks.last().map(|s| s.offset + 1).unwrap_or(0))
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(CoreError::Parse {
            offset: self.offset(),
            message: message.into(),
        })
    }

    fn expect(&mut self, want: &Tok) -> Result<()> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            other => {
                let msg = format!("expected {want:?}, found {other:?}");
                self.err(msg)
            }
        }
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                self.pos -= 1;
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    /// `x1, x2` or `x1 x2` (comma optional), at least one.
    fn var_list(&mut self) -> Result<Vec<VarId>> {
        let mut out = vec![];
        loop {
            let name = self.ident()?;
            out.push(self.syms.var(&name));
            if self.eat(&Tok::Comma) {
                continue;
            }
            // Space-separated continuation: another ident NOT followed by '('
            // (which would start an atom).
            if matches!(self.peek(), Some(Tok::Ident(_))) && self.peek2() != Some(&Tok::LParen) {
                continue;
            }
            break;
        }
        Ok(out)
    }

    /// `R(x, y)` with variable arguments.
    fn atom(&mut self) -> Result<Atom> {
        let rel_name = self.ident()?;
        let rel = self.syms.rel(&rel_name);
        self.expect(&Tok::LParen)?;
        let mut args = vec![];
        if !self.eat(&Tok::RParen) {
            loop {
                let v = self.ident()?;
                args.push(self.syms.var(&v));
                if self.eat(&Tok::Comma) {
                    continue;
                }
                self.expect(&Tok::RParen)?;
                break;
            }
        }
        Ok(Atom::new(rel, args))
    }

    /// `A(x) & B(x,y) & ...`
    fn atom_conj(&mut self) -> Result<Vec<Atom>> {
        let mut atoms = vec![self.atom()?];
        while self.eat(&Tok::Amp) {
            atoms.push(self.atom()?);
        }
        Ok(atoms)
    }

    // ---------- nested tgds ----------

    /// Top level entry.
    fn nested_top(&mut self) -> Result<PNode> {
        let node = match self.peek() {
            Some(Tok::LParen) => {
                self.bump();
                let n = self.impl_body(true)?;
                self.expect(&Tok::RParen)?;
                n
            }
            _ => self.impl_body(true)?,
        };
        if self.pos != self.toks.len() {
            return self.err("trailing input after nested tgd");
        }
        Ok(node)
    }

    /// `[forall VARS] atoms -> conclusion`. `top` enables implicit
    /// universal quantification when `forall` is absent.
    fn impl_body(&mut self, top: bool) -> Result<PNode> {
        let explicit = self.peek() == Some(&Tok::Forall);
        let universals = if explicit {
            self.bump();
            self.var_list()?
        } else {
            vec![]
        };
        // `forall x (BODY -> CONCL)` — grouping parens around the implication.
        if explicit && self.peek() == Some(&Tok::LParen) {
            self.bump();
            let mut inner = self.impl_tail(top && !explicit)?;
            self.expect(&Tok::RParen)?;
            inner.universals = universals;
            return Ok(inner);
        }
        let mut node = self.impl_tail(top && !explicit)?;
        node.universals = universals;
        if top && !explicit {
            // Implicit universals: body variables in first-occurrence order.
            let mut seen = std::collections::BTreeSet::new();
            let mut us = vec![];
            for a in &node.body {
                for &v in &a.args {
                    if seen.insert(v) {
                        us.push(v);
                    }
                }
            }
            node.universals = us;
        }
        Ok(node)
    }

    /// `atoms -> conclusion` (no quantifier prefix).
    fn impl_tail(&mut self, _top_implicit: bool) -> Result<PNode> {
        let body = self.atom_conj()?;
        self.expect(&Tok::Arrow)?;
        let (existentials, head, children) = self.conclusion()?;
        Ok(PNode {
            universals: vec![],
            body,
            existentials,
            head,
            children,
        })
    }

    /// `[exists VARS] chi ('&' chi)*`
    fn conclusion(&mut self) -> Result<(Vec<VarId>, Vec<Atom>, Vec<PNode>)> {
        let existentials = if self.eat(&Tok::Exists) {
            self.var_list()?
        } else {
            vec![]
        };
        let mut head = vec![];
        let mut children = vec![];
        self.chi_conj(&mut head, &mut children)?;
        Ok((existentials, head, children))
    }

    fn chi_conj(&mut self, head: &mut Vec<Atom>, children: &mut Vec<PNode>) -> Result<()> {
        loop {
            self.chi_item(head, children)?;
            if !self.eat(&Tok::Amp) {
                break;
            }
        }
        Ok(())
    }

    fn chi_item(&mut self, head: &mut Vec<Atom>, children: &mut Vec<PNode>) -> Result<()> {
        match self.peek() {
            Some(Tok::True) => {
                self.bump();
                Ok(())
            }
            Some(Tok::Forall) => {
                children.push(self.impl_body(false)?);
                Ok(())
            }
            Some(Tok::LParen) => {
                self.bump();
                // Inside parens: either a quantifier-free nested part
                // `atoms -> conclusion`, or a grouped conjunction of items
                // (each of which may itself be a quantified part). Try the
                // implication reading first.
                let save = self.pos;
                if self.peek() != Some(&Tok::Forall) {
                    if let Ok(atoms) = self.atom_conj() {
                        if self.eat(&Tok::Arrow) {
                            let (existentials, h, cs) = self.conclusion()?;
                            self.expect(&Tok::RParen)?;
                            children.push(PNode {
                                universals: vec![],
                                body: atoms,
                                existentials,
                                head: h,
                                children: cs,
                            });
                            return Ok(());
                        }
                    }
                    self.pos = save;
                }
                // Grouped conjunction.
                self.chi_conj(head, children)?;
                self.expect(&Tok::RParen)?;
                Ok(())
            }
            Some(Tok::Ident(_)) => {
                head.push(self.atom()?);
                Ok(())
            }
            other => {
                let msg = format!("expected conclusion item, found {other:?}");
                self.err(msg)
            }
        }
    }

    // ---------- SO tgds ----------

    fn so_tgd(&mut self) -> Result<SoTgd> {
        let mut funcs = vec![];
        if self.eat(&Tok::Exists) {
            loop {
                let name = self.ident()?;
                funcs.push(self.syms.func(&name));
                if self.eat(&Tok::Comma) {
                    continue;
                }
                break;
            }
            self.expect(&Tok::Dot)?;
        }
        let mut clauses = vec![self.so_clause()?];
        while self.eat(&Tok::Semi) {
            clauses.push(self.so_clause()?);
        }
        if self.pos != self.toks.len() {
            return self.err("trailing input after SO tgd");
        }
        Ok(SoTgd::new(funcs, clauses))
    }

    fn so_clause(&mut self) -> Result<SoClause> {
        let mut body = vec![];
        let mut equalities = vec![];
        loop {
            // Either `R(vars)` (atom) or `term = term` (equality). Both can
            // start with `ident(...)`; decide by the following token.
            let save = self.pos;
            let t = self.term()?;
            if self.eat(&Tok::Eq) {
                let rhs = self.term()?;
                equalities.push((t, rhs));
            } else {
                // Must be an atom over variables; re-parse strictly.
                self.pos = save;
                body.push(self.atom()?);
            }
            if self.eat(&Tok::Amp) {
                continue;
            }
            break;
        }
        self.expect(&Tok::Arrow)?;
        let mut head = vec![];
        if self.eat(&Tok::True) {
            // empty head
        } else {
            loop {
                head.push(self.term_atom()?);
                if !self.eat(&Tok::Amp) {
                    break;
                }
            }
        }
        Ok(SoClause::new(body, equalities, head))
    }

    /// A term: `x` or `f(t1, ..., tk)`.
    fn term(&mut self) -> Result<Term> {
        let name = self.ident()?;
        if self.peek() == Some(&Tok::LParen) {
            self.bump();
            let f = self.syms.func(&name);
            let mut args = vec![];
            if !self.eat(&Tok::RParen) {
                loop {
                    args.push(self.term()?);
                    if self.eat(&Tok::Comma) {
                        continue;
                    }
                    self.expect(&Tok::RParen)?;
                    break;
                }
            }
            if args.is_empty() {
                return self.err("nullary function symbols are not supported");
            }
            Ok(Term::App(f, args))
        } else {
            Ok(Term::Var(self.syms.var(&name)))
        }
    }

    /// `R(t1, ..., tk)` with term arguments.
    fn term_atom(&mut self) -> Result<TermAtom> {
        let rel_name = self.ident()?;
        let rel = self.syms.rel(&rel_name);
        self.expect(&Tok::LParen)?;
        let mut args = vec![];
        if !self.eat(&Tok::RParen) {
            loop {
                args.push(self.term()?);
                if self.eat(&Tok::Comma) {
                    continue;
                }
                self.expect(&Tok::RParen)?;
                break;
            }
        }
        Ok(TermAtom::new(rel, args))
    }

    // ---------- egds ----------

    fn egd(&mut self) -> Result<Egd> {
        let body = self.atom_conj()?;
        self.expect(&Tok::Arrow)?;
        let l = self.ident()?;
        self.expect(&Tok::Eq)?;
        let r = self.ident()?;
        if self.pos != self.toks.len() {
            return self.err("trailing input after egd");
        }
        Ok(Egd::new(body, (self.syms.var(&l), self.syms.var(&r))))
    }
}

fn pnode_to_parts(node: PNode, parent: Option<usize>, parts: &mut Vec<Part>) -> usize {
    let id = parts.len();
    parts.push(Part {
        parent,
        universals: node.universals,
        body: node.body,
        existentials: node.existentials,
        head: node.head,
        children: vec![],
    });
    for child in node.children {
        let cid = pnode_to_parts(child, Some(id), parts);
        parts[id].children.push(cid);
    }
    id
}

/// Parses a nested tgd (see module docs for the grammar).
pub fn parse_nested_tgd(syms: &mut SymbolTable, input: &str) -> Result<NestedTgd> {
    let mut p = Parser::new(input, syms)?;
    let node = p.nested_top()?;
    let mut parts = vec![];
    pnode_to_parts(node, None, &mut parts);
    Ok(NestedTgd::from_parts(parts))
}

/// Parses an s-t tgd: a nested tgd with a single part.
pub fn parse_st_tgd(syms: &mut SymbolTable, input: &str) -> Result<StTgd> {
    let nested = parse_nested_tgd(syms, input)?;
    nested
        .to_st_tgd()
        .ok_or_else(|| CoreError::Invalid("expected an s-t tgd, found nested parts".into()))
}

/// Parses an SO tgd, e.g. `exists f . S(x,y) -> R(f(x),f(y))`. Clauses are
/// separated by `;`; universal quantifiers are implicit.
pub fn parse_so_tgd(syms: &mut SymbolTable, input: &str) -> Result<SoTgd> {
    Parser::new(input, syms)?.so_tgd()
}

/// Parses an egd, e.g. `P1(z,x) & P1(z,x2) -> x = x2`.
pub fn parse_egd(syms: &mut SymbolTable, input: &str) -> Result<Egd> {
    Parser::new(input, syms)?.egd()
}

/// Parses a ground fact, e.g. `S(a,b)` — identifiers in argument position
/// are interned as constants.
pub fn parse_fact(syms: &mut SymbolTable, input: &str) -> Result<crate::instance::Fact> {
    let mut p = Parser::new(input, syms)?;
    let rel_name = p.ident()?;
    let rel = p.syms.rel(&rel_name);
    p.expect(&Tok::LParen)?;
    let mut args = Vec::new();
    if !p.eat(&Tok::RParen) {
        loop {
            let name = p.ident()?;
            args.push(crate::value::Value::Const(p.syms.constant(&name)));
            if p.eat(&Tok::Comma) {
                continue;
            }
            p.expect(&Tok::RParen)?;
            break;
        }
    }
    if p.pos != p.toks.len() {
        return p.err("trailing input after fact");
    }
    Ok(crate::instance::Fact::new(rel, args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn parse_simple_st_tgd() {
        let mut syms = SymbolTable::new();
        let t = parse_st_tgd(&mut syms, "S(x,y) -> exists z R(x,z)").unwrap();
        let mut sch = Schema::new();
        t.validate(&mut sch).unwrap();
        assert_eq!(t.universals().len(), 2);
        assert_eq!(t.existentials.len(), 1);
    }

    #[test]
    fn parse_intro_nested_tgd() {
        // The nested tgd from Section 1 of the paper.
        let mut syms = SymbolTable::new();
        let t = parse_nested_tgd(
            &mut syms,
            "forall x1,x2 (S(x1,x2) -> exists y (S2(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))",
        )
        .unwrap();
        let mut sch = Schema::new();
        t.validate(&mut sch).unwrap();
        assert_eq!(t.num_parts(), 2);
        assert_eq!(t.part(0).head.len(), 1);
        assert_eq!(t.part(1).body.len(), 1);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn parse_running_example_four_parts() {
        let mut syms = SymbolTable::new();
        let t = parse_nested_tgd(
            &mut syms,
            "forall x1 (S1(x1) -> exists y1 (\
               forall x2 (S2(x2) -> R2(y1,x2)) & \
               forall x3 (S3(x1,x3) -> (R3(y1,x3) & \
                 forall x4 (S4(x3,x4) -> exists y2 R4(y2,x4))))))",
        )
        .unwrap();
        let mut sch = Schema::new();
        t.validate(&mut sch).unwrap();
        assert_eq!(t.num_parts(), 4);
        assert_eq!(t.children(0).len(), 2);
        assert_eq!(t.children(2), &[3]);
        assert_eq!(t.num_universals(), 4);
    }

    #[test]
    fn parse_unquantified_nested_part() {
        // Example 3.4: ∀x1 S1(x1) → ((S2(x1) → T2(x1))).
        let mut syms = SymbolTable::new();
        let t = parse_nested_tgd(&mut syms, "forall x1 (S1(x1) -> ((S2(x1) -> T2(x1))))").unwrap();
        let mut sch = Schema::new();
        t.validate(&mut sch).unwrap();
        assert_eq!(t.num_parts(), 2);
        assert!(t.part(1).universals.is_empty());
    }

    #[test]
    fn parse_greedy_quantifier_without_parens() {
        // τ from Example 3.10: ∀x1 (S1(x1) → ∃y (∀x2 S2(x2) → R(x2,y))).
        let mut syms = SymbolTable::new();
        let t = parse_nested_tgd(
            &mut syms,
            "forall x1 (S1(x1) -> exists y (forall x2 S2(x2) -> R(x2,y)))",
        )
        .unwrap();
        let mut sch = Schema::new();
        t.validate(&mut sch).unwrap();
        assert_eq!(t.num_parts(), 2);
        assert_eq!(t.part(1).universals.len(), 1);
        assert_eq!(t.part(1).head.len(), 1);
    }

    #[test]
    fn parse_so_tgd_plain() {
        let mut syms = SymbolTable::new();
        let t = parse_so_tgd(&mut syms, "exists f . S(x,y) -> R(f(x),f(y))").unwrap();
        assert!(t.is_plain());
        let mut sch = Schema::new();
        t.validate(&mut sch).unwrap();
        assert_eq!(t.clauses.len(), 1);
    }

    #[test]
    fn parse_so_tgd_with_equality_and_clauses() {
        let mut syms = SymbolTable::new();
        let t = parse_so_tgd(
            &mut syms,
            "exists f . Emp(e) -> Mgr(e,f(e)) ; Emp(e) & e = f(e) -> SelfMgr(e)",
        )
        .unwrap();
        assert!(!t.is_plain());
        assert_eq!(t.clauses.len(), 2);
        assert_eq!(t.clauses[1].equalities.len(), 1);
        let mut sch = Schema::new();
        t.validate(&mut sch).unwrap();
    }

    #[test]
    fn parse_egd_ok() {
        let mut syms = SymbolTable::new();
        let e = parse_egd(&mut syms, "P1(z,x1) & P1(z,x2) -> x1 = x2").unwrap();
        let mut sch = Schema::new();
        e.validate(&mut sch).unwrap();
    }

    #[test]
    fn parse_fact_grounds_arguments() {
        let mut syms = SymbolTable::new();
        let f = parse_fact(&mut syms, "S(a, b)").unwrap();
        assert_eq!(f.args.len(), 2);
        assert!(f.args.iter().all(|v| v.is_const()));
        assert!(parse_fact(&mut syms, "S(a) extra").is_err());
        assert!(parse_fact(&mut syms, "S(a").is_err());
        let nullary = parse_fact(&mut syms, "T()").unwrap();
        assert!(nullary.args.is_empty());
    }

    #[test]
    fn parse_errors_are_reported() {
        let mut syms = SymbolTable::new();
        assert!(parse_nested_tgd(&mut syms, "S(x -> R(x)").is_err());
        assert!(parse_nested_tgd(&mut syms, "S(x) -> R(x) extra").is_err());
        assert!(parse_so_tgd(&mut syms, "exists f S(x) -> R(x)").is_err());
        assert!(parse_egd(&mut syms, "P(x) -> x").is_err());
    }

    #[test]
    fn display_parse_round_trip() {
        let mut syms = SymbolTable::new();
        let t = parse_nested_tgd(
            &mut syms,
            "forall x1 (S1(x1) -> exists y1 (\
               forall x2 (S2(x2) -> R2(y1,x2)) & \
               forall x3 (S3(x1,x3) -> (R3(y1,x3) & \
                 forall x4 (S4(x3,x4) -> exists y2 R4(y2,x4))))))",
        )
        .unwrap();
        let shown = t.display(&syms);
        let t2 = parse_nested_tgd(&mut syms, &shown).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn parse_example_415_nested_tgd() {
        // ∀z (Q(z) → ∃u (∀x∀y (S(x,y) → ∃v R(v,u,x)))).
        let mut syms = SymbolTable::new();
        let t = parse_nested_tgd(
            &mut syms,
            "forall z (Q(z) -> exists u (forall x,y (S(x,y) -> exists v R(v,u,x))))",
        )
        .unwrap();
        let mut sch = Schema::new();
        t.validate(&mut sch).unwrap();
        assert_eq!(t.num_parts(), 2);
        assert_eq!(t.part(1).universals.len(), 2);
        assert_eq!(t.part(1).existentials.len(), 1);
    }
}
