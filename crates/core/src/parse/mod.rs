//! Text syntax for dependencies: lexer and recursive-descent parser.

pub mod lexer;
pub mod locate;
pub mod parser;

pub use locate::{locate_applied, locate_ident, locate_quantified};
pub use parser::{parse_egd, parse_fact, parse_nested_tgd, parse_so_tgd, parse_st_tgd};
