//! Best-effort re-location of symbol occurrences in dependency source text.
//!
//! The AST interns symbols and carries no positions, so validation errors
//! (unsafe variable, arity mismatch, …) cannot point into the source
//! directly. These helpers re-lex the offending statement and find the
//! token the diagnostic should anchor to. They are heuristics — for a
//! malformed statement they may miss — so every caller treats the result
//! as optional.

use crate::parse::lexer::{lex, Spanned, Tok};
use crate::span::Span;

fn is_name(s: &Spanned, name: &str) -> bool {
    matches!(&s.tok, Tok::Ident(n) if n == name)
}

/// The `nth` (0-based) occurrence of identifier `name` anywhere in `text`.
pub fn locate_ident(text: &str, name: &str, nth: usize) -> Option<Span> {
    let toks = lex(text).ok()?;
    toks.iter()
        .filter(|s| is_name(s, name))
        .nth(nth)
        .map(Spanned::span)
}

/// Is the token at `i` an identifier applied to arguments — i.e. directly
/// followed by an *adjacent* `(`? A spaced `(` after a quantifier-list
/// variable is grouping (`exists x (R(x))`), not application; the printers
/// and the paper's notation never put a space before an argument list.
fn is_application(toks: &[Spanned], i: usize) -> bool {
    match toks.get(i + 1) {
        Some(next) => next.tok == Tok::LParen && next.offset == toks[i].offset + toks[i].len,
        None => false,
    }
}

/// The `nth` occurrence of `name` inside a quantifier list — directly after
/// `forall`/`exists`, continuing through commas and further list variables.
/// An identifier applied to arguments ends the list (it starts an atom, as
/// in the greedy form `forall x S(x) -> …`).
pub fn locate_quantified(text: &str, name: &str, nth: usize) -> Option<Span> {
    let toks = lex(text).ok()?;
    let mut in_list = false;
    let mut seen = 0usize;
    for (i, s) in toks.iter().enumerate() {
        match &s.tok {
            Tok::Forall | Tok::Exists => in_list = true,
            Tok::Comma if in_list => {}
            Tok::Ident(n) if in_list => {
                if is_application(&toks, i) {
                    in_list = false;
                } else if n == name {
                    if seen == nth {
                        return Some(s.span());
                    }
                    seen += 1;
                }
            }
            _ => in_list = false,
        }
    }
    None
}

/// The `nth` occurrence of `name` applied to arguments (`name(…)`),
/// optionally restricted to applications with exactly `arity` top-level
/// arguments — used to pin arity-mismatch diagnostics on the conflicting
/// occurrence rather than the first.
pub fn locate_applied(text: &str, name: &str, arity: Option<usize>, nth: usize) -> Option<Span> {
    let toks = lex(text).ok()?;
    let mut seen = 0usize;
    for (i, s) in toks.iter().enumerate() {
        if !is_name(s, name) || toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::LParen) {
            continue;
        }
        if let Some(want) = arity {
            if application_arity(&toks, i + 1) != Some(want) {
                continue;
            }
        }
        if seen == nth {
            return Some(s.span());
        }
        seen += 1;
    }
    None
}

/// Counts top-level arguments of the application whose `(` is at token
/// index `lparen`. Returns `None` for unbalanced parentheses.
fn application_arity(toks: &[Spanned], lparen: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut commas = 0usize;
    let mut any = false;
    for s in &toks[lparen..] {
        match s.tok {
            Tok::LParen => depth += 1,
            Tok::RParen => {
                depth -= 1;
                if depth == 0 {
                    return Some(if any { commas + 1 } else { 0 });
                }
            }
            Tok::Comma if depth == 1 => commas += 1,
            _ => {
                if depth == 1 {
                    any = true;
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_occurrences() {
        let t = "S(x,y) -> R(x,y)";
        assert_eq!(locate_ident(t, "x", 0), Some(Span::new(2, 3)));
        assert_eq!(locate_ident(t, "x", 1), Some(Span::new(12, 13)));
        assert_eq!(locate_ident(t, "z", 0), None);
    }

    #[test]
    fn quantified_occurrences() {
        let t = "forall x,y (S(x,y) -> exists x (R(x)))";
        // First quantified x is in the forall list, second in the exists list.
        assert_eq!(locate_quantified(t, "x", 0), Some(Span::new(7, 8)));
        assert_eq!(locate_quantified(t, "x", 1), Some(Span::new(29, 30)));
        // y appears once in a list; its atom occurrence is not counted.
        assert_eq!(locate_quantified(t, "y", 1), None);
    }

    #[test]
    fn greedy_forall_form_ends_list_at_atom() {
        let t = "forall x S(x) -> R(x)";
        assert_eq!(locate_quantified(t, "x", 0), Some(Span::new(7, 8)));
        assert_eq!(locate_quantified(t, "S", 0), None);
    }

    #[test]
    fn applied_occurrences_with_arity() {
        let t = "R(x) & R(x,y) -> T(f(x,y))";
        assert_eq!(locate_applied(t, "R", None, 1), Some(Span::new(7, 8)));
        assert_eq!(locate_applied(t, "R", Some(2), 0), Some(Span::new(7, 8)));
        assert_eq!(locate_applied(t, "R", Some(3), 0), None);
        // Nested commas do not inflate the outer arity.
        assert_eq!(locate_applied(t, "T", Some(1), 0), Some(Span::new(17, 18)));
        assert_eq!(locate_applied(t, "f", Some(2), 0), Some(Span::new(19, 20)));
    }

    #[test]
    fn nullary_application() {
        assert_eq!(
            locate_applied("T() -> R(x)", "T", Some(0), 0),
            Some(Span::new(0, 1))
        );
    }
}
