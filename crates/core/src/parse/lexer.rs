//! Tokenizer for the textual dependency syntax.

use crate::error::{CoreError, Result};
use crate::span::Span;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier: relation, variable, constant or function name.
    Ident(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `&` (conjunction; `/\` is accepted too)
    Amp,
    /// `->`
    Arrow,
    /// `=`
    Eq,
    /// `;` (clause separator in SO tgds)
    Semi,
    /// `.` (after the function quantifier prefix of SO tgds)
    Dot,
    /// keyword `forall`
    Forall,
    /// keyword `exists`
    Exists,
    /// keyword `true` (empty conjunction ⊤)
    True,
}

/// A token together with its byte offset (for error messages).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Byte offset of the first character.
    pub offset: usize,
    /// Length of the token in bytes.
    pub len: usize,
}

impl Spanned {
    /// The byte span the token covers in the input.
    pub fn span(&self) -> Span {
        Span::new(self.offset, self.offset + self.len)
    }
}

/// Tokenizes `input`. Identifiers start with an alphabetic character or
/// `_` and continue with alphanumerics, `_` or `'`; the alphabetic classes
/// are Unicode-aware, so relation and variable names like `café` or `σ1`
/// lex as single tokens (offsets and lengths remain byte-based).
pub fn lex(input: &str) -> Result<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        // Decode the full character at `i` (never mid-character: every
        // branch below advances by a whole character's UTF-8 width).
        let c = input[i..].chars().next().expect("offset at char boundary");
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Spanned {
                    tok: Tok::LParen,
                    offset: i,
                    len: 1,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    tok: Tok::RParen,
                    offset: i,
                    len: 1,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    tok: Tok::Comma,
                    offset: i,
                    len: 1,
                });
                i += 1;
            }
            '&' => {
                out.push(Spanned {
                    tok: Tok::Amp,
                    offset: i,
                    len: 1,
                });
                i += 1;
            }
            ';' => {
                out.push(Spanned {
                    tok: Tok::Semi,
                    offset: i,
                    len: 1,
                });
                i += 1;
            }
            '.' => {
                out.push(Spanned {
                    tok: Tok::Dot,
                    offset: i,
                    len: 1,
                });
                i += 1;
            }
            '=' => {
                out.push(Spanned {
                    tok: Tok::Eq,
                    offset: i,
                    len: 1,
                });
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Spanned {
                        tok: Tok::Arrow,
                        offset: i,
                        len: 2,
                    });
                    i += 2;
                } else {
                    return Err(CoreError::Parse {
                        offset: i,
                        message: "expected '->'".into(),
                    });
                }
            }
            '/' => {
                // Accept `/\` as conjunction.
                if bytes.get(i + 1) == Some(&b'\\') {
                    out.push(Spanned {
                        tok: Tok::Amp,
                        offset: i,
                        len: 2,
                    });
                    i += 2;
                } else {
                    return Err(CoreError::Parse {
                        offset: i,
                        message: "expected '/\\'".into(),
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                for (off, c) in input[start..].char_indices() {
                    i = start + off;
                    if !(c.is_alphanumeric() || c == '_' || c == '\'') {
                        break;
                    }
                    i += c.len_utf8();
                }
                let word = &input[start..i];
                let tok = match word {
                    "forall" => Tok::Forall,
                    "exists" => Tok::Exists,
                    "true" | "top" => Tok::True,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Spanned {
                    tok,
                    offset: start,
                    len: i - start,
                });
            }
            _ => {
                return Err(CoreError::Parse {
                    offset: i,
                    message: format!("unexpected character {c:?}"),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_basic_tgd() {
        let toks = lex("S(x1,x2) -> exists y (R(y,x2))").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|s| &s.tok).collect();
        assert_eq!(kinds[0], &Tok::Ident("S".into()));
        assert_eq!(kinds[1], &Tok::LParen);
        assert!(kinds.contains(&&Tok::Arrow));
        assert!(kinds.contains(&&Tok::Exists));
    }

    #[test]
    fn lex_keywords_and_primes() {
        let toks = lex("forall x' (P(x') -> true)").unwrap();
        assert_eq!(toks[0].tok, Tok::Forall);
        assert_eq!(toks[1].tok, Tok::Ident("x'".into()));
        assert_eq!(toks.last().unwrap().tok, Tok::RParen);
    }

    #[test]
    fn lex_so_tgd_punctuation() {
        let toks = lex("exists f . S(x,y) & x = f(x) -> R(f(x)) ; Q(z) -> T(z)").unwrap();
        assert!(toks.iter().any(|t| t.tok == Tok::Dot));
        assert!(toks.iter().any(|t| t.tok == Tok::Semi));
        assert!(toks.iter().any(|t| t.tok == Tok::Eq));
    }

    #[test]
    fn lex_conj_alias() {
        let toks = lex(r"P(x) /\ Q(x) -> R(x)").unwrap();
        assert!(toks.iter().any(|t| t.tok == Tok::Amp));
    }

    #[test]
    fn lex_rejects_garbage() {
        assert!(lex("P(x) % Q(x)").is_err());
        assert!(lex("P(x) - Q(x)").is_err());
    }

    #[test]
    fn unicode_identifiers_lex_as_single_tokens() {
        let toks = lex("Café(σ1,x) -> Tür(σ1)").unwrap();
        assert_eq!(toks[0].tok, Tok::Ident("Café".into()));
        assert_eq!(toks[0].span(), Span::new(0, "Café".len()));
        assert_eq!(toks[2].tok, Tok::Ident("σ1".into()));
        assert!(toks.iter().any(|t| t.tok == Tok::Ident("Tür".into())));
        // A lone non-alphabetic multi-byte character is still rejected,
        // with a whole-character error message (no mojibake).
        let err = lex("P(x) → Q(x)").unwrap_err();
        let msg = format!("{err:?}");
        assert!(msg.contains('→'), "{msg}");
    }

    #[test]
    fn offsets_point_at_tokens() {
        let toks = lex("ab  ->").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
        assert_eq!(toks[0].span(), Span::new(0, 2));
        assert_eq!(toks[1].span(), Span::new(4, 6));
    }
}
