//! Shared tuple index: the `(rel, pos, value) → facts` hash index that
//! accelerates every matching problem in the workspace — trigger
//! enumeration in `ndl-chase` and homomorphism/core search in `ndl-hom`.
//!
//! The index owns a columnar [`FactStore`] and adds posting lists keyed by
//! stable [`FactId`]s: `(rel, pos, value) → SmallIdVec<FactId>`. Dedup and
//! containment are answered by the store's O(1) hash buckets (no tuple
//! cloning, no second exact-match map); posting lists append on first
//! insertion and are filtered through liveness bits at read time, so the
//! index is **updatable in place** — the incremental core engine retracts
//! a handful of facts from a large instance without a rebuild.
//!
//! Posting lists keep their build order. [`TupleIndex::from_instance`]
//! indexes facts in the instance's deterministic sorted order, so all
//! consumers enumerate candidates in the same order as a sorted full scan
//! would, keeping results reproducible.

use crate::instance::{Fact, Instance};
use crate::store::{FactId, FactStore, Inserted, SmallIdVec};
use crate::symbol::RelId;
use crate::value::Value;

pub use crate::hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};

/// Stable id of a tuple inside a [`TupleIndex`] — an alias of the store's
/// [`FactId`]. Ids are assigned in insertion order and survive removal
/// (tombstones), so iterating a posting list visits tuples in the
/// deterministic order they were indexed.
pub type TupleId = FactId;

/// An updatable `(rel, pos, value) → facts` hash index over a columnar
/// fact store.
///
/// Supports the two access paths every search engine here needs:
/// - [`TupleIndex::posting`]: all tuples with `value` at `pos` of `rel`
///   (the candidate set for a partially bound atom or fact), and
/// - [`TupleIndex::rel_ids`]: all tuples of a relation (the scan fallback
///   when nothing is bound).
///
/// Removal is O(1) (a tombstone in the store); posting lists are filtered
/// through [`TupleIndex::is_live`] at read time.
#[derive(Clone, Debug, Default)]
pub struct TupleIndex {
    /// The columnar arena: rows, liveness, dedup buckets, counters.
    store: FactStore,
    /// `(rel, pos, value) → ids` posting lists, in insertion order.
    posting: FxHashMap<(RelId, u32, Value), SmallIdVec>,
}

impl TupleIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty index pre-sized for roughly `tuples` facts of
    /// `cells` total tuple cells — the chase planner passes its predicted
    /// chase size here so hot loops avoid rehash-and-grow cycles.
    pub fn with_capacity(tuples: usize, cells: usize) -> Self {
        TupleIndex {
            store: FactStore::with_capacity(tuples),
            posting: FxHashMap::with_capacity_and_hasher(cells, FxBuildHasher::default()),
        }
    }

    /// Builds the index of an instance (O(total tuple cells)), indexing
    /// facts in the instance's deterministic sorted iteration order.
    pub fn from_instance(inst: &Instance) -> Self {
        let mut idx = TupleIndex::with_capacity(inst.len(), inst.len() * 2);
        for f in inst.facts() {
            idx.insert(f.rel, f.args);
        }
        idx
    }

    /// The underlying store (counters, id-level access).
    pub fn store(&self) -> &FactStore {
        &self.store
    }

    /// Inserts a tuple; returns `true` if it was not already live.
    /// O(1) expected; a re-insertion of a tombstoned fact revives its
    /// original id (posting lists still hold it).
    pub fn insert(&mut self, rel: RelId, args: impl AsRef<[Value]>) -> bool {
        let args = args.as_ref();
        match self.store.insert(rel, args) {
            Inserted::Present(_) => false,
            Inserted::Revived(_) => true,
            Inserted::Fresh(id) => {
                for (pos, &v) in args.iter().enumerate() {
                    self.posting
                        .entry((rel, pos as u32, v))
                        .or_default()
                        .push(id);
                }
                true
            }
        }
    }

    /// Removes a fact; returns `true` if it was live. The row is
    /// tombstoned; posting lists are filtered lazily.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        self.store.retract(fact.rel, &fact.args).is_some()
    }

    /// Removes a tuple by relation and arguments; returns `true` if live.
    pub fn remove_tuple(&mut self, rel: RelId, args: &[Value]) -> bool {
        self.store.retract(rel, args).is_some()
    }

    /// Is the fact live in the index? O(1) expected.
    pub fn contains(&self, rel: RelId, args: &[Value]) -> bool {
        self.store.contains(rel, args)
    }

    /// Total number of live tuples. O(1).
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Is the index empty (no live tuples)? O(1).
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Number of live tuples of `rel`.
    pub fn rel_len(&self, rel: RelId) -> usize {
        self.store.rel_len(rel)
    }

    /// Is the tuple id live?
    #[inline]
    pub fn is_live(&self, id: TupleId) -> bool {
        self.store.is_live(id)
    }

    /// The tuple stored under `id` (live or dead).
    #[inline]
    pub fn tuple(&self, id: TupleId) -> &[Value] {
        self.store.tuple(id)
    }

    /// The posting list of `(rel, pos, value)`: ids of tuples with `value`
    /// at position `pos`, in insertion order. May contain dead ids — filter
    /// with [`TupleIndex::is_live`]. Empty when no tuple matches.
    pub fn posting(&self, rel: RelId, pos: u32, value: Value) -> &[TupleId] {
        self.posting
            .get(&(rel, pos, value))
            .map_or(&[][..], SmallIdVec::as_slice)
    }

    /// Upper bound on the length of [`TupleIndex::posting`] (counts dead
    /// ids too) — the selectivity estimate used for join/MRV ordering.
    pub fn posting_len(&self, rel: RelId, pos: u32, value: Value) -> usize {
        self.posting
            .get(&(rel, pos, value))
            .map_or(0, SmallIdVec::len)
    }

    /// All tuple ids of `rel` in insertion order (may contain dead ids).
    pub fn rel_ids(&self, rel: RelId) -> &[TupleId] {
        self.store.rel_row_ids(rel)
    }

    /// Advances the store's delta-frontier watermark past every current
    /// row (see [`FactStore::mark_frontier`] for the contract). The
    /// semi-naive chase marks at each round commit so the frontier is the
    /// previous round's fresh tuples.
    #[inline]
    pub fn mark_frontier(&mut self) {
        self.store.mark_frontier();
    }

    /// The current frontier watermark: ids `>=` this were indexed since
    /// the last [`TupleIndex::mark_frontier`].
    #[inline]
    pub fn frontier_start(&self) -> u32 {
        self.store.frontier_start()
    }

    /// Is the tuple id in the current frontier?
    #[inline]
    pub fn in_frontier(&self, id: TupleId) -> bool {
        self.store.in_frontier(id)
    }

    /// The frontier suffix of a posting list: the ids of
    /// [`TupleIndex::posting`] indexed since the last mark. Posting lists
    /// append ids in increasing order (fresh inserts only — revivals never
    /// re-append), so the frontier is a contiguous suffix found by binary
    /// search.
    pub fn posting_frontier(&self, rel: RelId, pos: u32, value: Value) -> &[TupleId] {
        let ids = self.posting(rel, pos, value);
        let cut = ids.partition_point(|id| id.0 < self.store.frontier_start());
        &ids[cut..]
    }

    /// The frontier suffix of [`TupleIndex::rel_ids`] — all tuples of
    /// `rel` indexed since the last mark.
    pub fn rel_frontier(&self, rel: RelId) -> &[TupleId] {
        self.store.rel_frontier(rel)
    }

    /// The live relations (those with at least one live tuple).
    pub fn active_relations(&self) -> impl Iterator<Item = RelId> + '_ {
        self.store.active_relations()
    }

    /// Rebuilds an [`Instance`] from the live tuples.
    pub fn to_instance(&self) -> Instance {
        let mut inst = Instance::new();
        for (_, rel, args) in self.store.iter() {
            inst.insert_tuple(rel, args);
        }
        inst
    }

    /// Consumes the index, converting its store into an [`Instance`]
    /// without copying a single tuple — the fixpoint chase finishes this
    /// way. Tombstoned rows stay tombstoned; the instance filters them
    /// like any retracted fact.
    pub fn into_instance(self) -> Instance {
        Instance::from_store(self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;
    use crate::value::NullId;

    fn setup() -> (SymbolTable, RelId, Value, Value, Value) {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        let a = Value::Const(syms.constant("a"));
        let b = Value::Const(syms.constant("b"));
        let n = Value::Null(NullId(0));
        (syms, r, a, b, n)
    }

    #[test]
    fn build_and_lookup() {
        let (_syms, r, a, b, n) = setup();
        let inst = Instance::from_facts([
            Fact::new(r, vec![a, b]),
            Fact::new(r, vec![a, n]),
            Fact::new(r, vec![b, b]),
        ]);
        let idx = TupleIndex::from_instance(&inst);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.rel_len(r), 3);
        // Two tuples have `a` at position 0.
        let ids = idx.posting(r, 0, a);
        assert_eq!(ids.len(), 2);
        assert!(ids.iter().all(|&id| idx.tuple(id)[0] == a));
        // None has `n` at position 0.
        assert!(idx.posting(r, 0, n).is_empty());
        assert!(idx.contains(r, &[a, b]));
        assert!(!idx.contains(r, &[b, a]));
        assert_eq!(idx.to_instance(), inst);
    }

    #[test]
    fn remove_marks_dead_and_filters() {
        let (_syms, r, a, b, _) = setup();
        let mut idx = TupleIndex::new();
        idx.insert(r, vec![a, b]);
        idx.insert(r, vec![b, b]);
        assert!(idx.remove(&Fact::new(r, vec![a, b])));
        assert!(!idx.remove(&Fact::new(r, vec![a, b])));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.rel_len(r), 1);
        assert!(!idx.contains(r, &[a, b]));
        // The posting list still holds the dead id; liveness filters it.
        let live: Vec<_> = idx
            .posting(r, 1, b)
            .iter()
            .filter(|&&id| idx.is_live(id))
            .collect();
        assert_eq!(live.len(), 1);
        let back = idx.to_instance();
        assert_eq!(back.len(), 1);
        assert!(back.contains_tuple(r, &[b, b]));
    }

    #[test]
    fn reinsert_after_remove() {
        let (_syms, r, a, b, _) = setup();
        let mut idx = TupleIndex::new();
        assert!(idx.insert(r, vec![a, b]));
        assert!(!idx.insert(r, vec![a, b]));
        idx.remove(&Fact::new(r, vec![a, b]));
        assert!(idx.insert(r, vec![a, b]));
        assert!(idx.contains(r, &[a, b]));
        assert_eq!(idx.len(), 1);
        // Revival keeps the original id — no duplicate row, and the
        // posting list holds the id exactly once.
        assert_eq!(idx.store().rows(), 1);
        assert_eq!(idx.posting(r, 0, a).len(), 1);
    }

    #[test]
    fn deterministic_posting_order_matches_instance_order() {
        let (mut syms, r, a, b, _) = setup();
        let c = Value::Const(syms.constant("c"));
        // Insert out of sorted order; from_instance re-sorts via Instance.
        let inst = Instance::from_facts([
            Fact::new(r, vec![c, a]),
            Fact::new(r, vec![a, a]),
            Fact::new(r, vec![b, a]),
        ]);
        let idx = TupleIndex::from_instance(&inst);
        let tuples: Vec<&[Value]> = idx
            .posting(r, 1, a)
            .iter()
            .map(|&id| idx.tuple(id))
            .collect();
        let scanned: Vec<&[Value]> = inst.tuples(r).collect();
        assert_eq!(tuples, scanned);
    }

    #[test]
    fn empty_index() {
        let (_syms, r, a, _, _) = setup();
        let idx = TupleIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.rel_len(r), 0);
        assert!(idx.posting(r, 0, a).is_empty());
        assert!(idx.rel_ids(r).is_empty());
        assert_eq!(idx.active_relations().count(), 0);
        assert!(idx.to_instance().is_empty());
    }

    #[test]
    fn posting_frontier_is_the_post_mark_suffix() {
        let (mut syms, r, a, b, _) = setup();
        let c = Value::Const(syms.constant("c"));
        let mut idx = TupleIndex::new();
        idx.insert(r, vec![a, a]);
        idx.insert(r, vec![b, a]);
        idx.mark_frontier();
        assert!(idx.posting_frontier(r, 1, a).is_empty());
        assert!(idx.rel_frontier(r).is_empty());
        idx.insert(r, vec![c, a]);
        let delta: Vec<&[Value]> = idx
            .posting_frontier(r, 1, a)
            .iter()
            .map(|&id| idx.tuple(id))
            .collect();
        assert_eq!(delta, vec![&[c, a][..]]);
        assert_eq!(idx.rel_frontier(r).len(), 1);
        // A dedup-hit re-insert of a pre-mark tuple adds nothing.
        assert!(!idx.insert(r, vec![a, a]));
        assert_eq!(idx.posting_frontier(r, 1, a).len(), 1);
        // Full posting list is unchanged: frontier is a view, not a split.
        assert_eq!(idx.posting(r, 1, a).len(), 3);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let (_syms, r, a, b, _) = setup();
        let mut idx = TupleIndex::with_capacity(16, 32);
        assert!(idx.is_empty());
        idx.insert(r, vec![a, b]);
        assert!(idx.contains(r, &[a, b]));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.store().counters().inserts, 1);
    }
}
