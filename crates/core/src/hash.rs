//! Fast non-cryptographic hashing for the workspace's small keys.
//!
//! Hashing uses a hand-rolled Fx-style multiply-xor hasher ([`FxHasher`]):
//! the keys are tiny (ids and small tuples), where SipHash's
//! per-finalization cost dominates; Fx is the standard fix (rustc uses the
//! same scheme) and keeps the workspace free of external dependencies.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A fast, non-cryptographic hasher for small keys (ids, short tuples),
/// after the `rustc-hash` / FxHash scheme: rotate, xor, multiply.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// The odd constant of the Fx multiply step (π's fractional bits).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

impl std::fmt::Debug for FxHasher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FxHasher({:#x})", self.hash)
    }
}

/// Builds [`FxHasher`]s for the std hash containers.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// A `HashMap` keyed with the fast [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` keyed with the fast [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx_hasher_distributes() {
        // Smoke-test the hasher: distinct small keys get distinct hashes.
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0u32..1000 {
            seen.insert(bh.hash_one(i));
        }
        assert_eq!(seen.len(), 1000);
    }
}
