//! First-order terms over variables and function symbols, and ground terms
//! over constants, as used by SO tgds and the Skolemization of nested tgds
//! (paper, Section 2, "SO tgds and Plain SO tgds").

use crate::symbol::{ConstId, FuncId, SymbolTable, VarId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A term based on variables and function symbols.
///
/// Terms are defined recursively (paper, Section 2): every variable is a
/// term, and `f(t1, ..., tk)` is a term when the `ti` are terms.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Term {
    /// A first-order variable.
    Var(VarId),
    /// A function application `f(t1, ..., tk)`.
    App(FuncId, Vec<Term>),
}

impl Term {
    /// Constructs a function application.
    pub fn app(f: FuncId, args: impl Into<Vec<Term>>) -> Self {
        Term::App(f, args.into())
    }

    /// Is this a nested term, i.e. a function application with a function
    /// application among its arguments? Plain SO tgds forbid these.
    pub fn is_nested(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::App(_, args) => args.iter().any(|t| matches!(t, Term::App(..))),
        }
    }

    /// Depth of the term: variables have depth 0, `f(x)` has depth 1, ...
    pub fn depth(&self) -> usize {
        match self {
            Term::Var(_) => 0,
            Term::App(_, args) => 1 + args.iter().map(Term::depth).max().unwrap_or(0),
        }
    }

    /// Collects the variables of the term into `out` (with duplicates).
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Term::Var(v) => out.push(*v),
            Term::App(_, args) => args.iter().for_each(|t| t.collect_vars(out)),
        }
    }

    /// Collects the function symbols of the term into `out` (with duplicates).
    pub fn collect_funcs(&self, out: &mut Vec<FuncId>) {
        match self {
            Term::Var(_) => {}
            Term::App(f, args) => {
                out.push(*f);
                args.iter().for_each(|t| t.collect_funcs(out));
            }
        }
    }

    /// Evaluates the term under an assignment of variables to constants,
    /// producing a ground term. Returns `None` if a variable is unbound.
    pub fn ground(&self, assign: &dyn Fn(VarId) -> Option<ConstId>) -> Option<GroundTerm> {
        match self {
            Term::Var(v) => assign(*v).map(GroundTerm::Const),
            Term::App(f, args) => {
                let mut gargs = Vec::with_capacity(args.len());
                for a in args {
                    gargs.push(a.ground(assign)?);
                }
                Some(GroundTerm::App(*f, gargs))
            }
        }
    }

    /// Renders the term.
    pub fn display<'a>(&'a self, syms: &'a SymbolTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Term, &'a SymbolTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt_term(self.0, self.1, f)
            }
        }
        D(self, syms)
    }
}

fn fmt_term(t: &Term, syms: &SymbolTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match t {
        Term::Var(v) => write!(f, "{}", syms.var_name(*v)),
        Term::App(g, args) => {
            write!(f, "{}(", syms.func_name(*g))?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                fmt_term(a, syms, f)?;
            }
            write!(f, ")")
        }
    }
}

/// A ground (variable-free) term over constants and function symbols.
///
/// The chase interprets Skolem functions over the Herbrand term universe:
/// each ground function application denotes a distinct labeled null, and two
/// ground terms denote the same value iff they are syntactically identical.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum GroundTerm {
    /// A constant.
    Const(ConstId),
    /// A ground function application.
    App(FuncId, Vec<GroundTerm>),
}

impl GroundTerm {
    /// Applies a constant substitution (used when source egds merge
    /// constants of canonical instances; paper, Definition 5.4).
    pub fn map_consts(&self, f: &dyn Fn(ConstId) -> ConstId) -> GroundTerm {
        match self {
            GroundTerm::Const(c) => GroundTerm::Const(f(*c)),
            GroundTerm::App(g, args) => {
                GroundTerm::App(*g, args.iter().map(|a| a.map_consts(f)).collect())
            }
        }
    }

    /// Renders the ground term, e.g. `f(a_1,a_3)`.
    pub fn display<'a>(&'a self, syms: &'a SymbolTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a GroundTerm, &'a SymbolTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt_ground(self.0, self.1, f)
            }
        }
        D(self, syms)
    }
}

fn fmt_ground(t: &GroundTerm, syms: &SymbolTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match t {
        GroundTerm::Const(c) => write!(f, "{}", syms.const_name(*c)),
        GroundTerm::App(g, args) => {
            write!(f, "{}(", syms.func_name(*g))?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                fmt_ground(a, syms, f)?;
            }
            write!(f, ")")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nestedness_and_depth() {
        let mut syms = SymbolTable::new();
        let x = syms.var("x");
        let f = syms.func("f");
        let g = syms.func("g");
        let fx = Term::app(f, vec![Term::Var(x)]);
        assert!(!fx.is_nested());
        assert_eq!(fx.depth(), 1);
        let gfx = Term::app(g, vec![fx.clone()]);
        assert!(gfx.is_nested());
        assert_eq!(gfx.depth(), 2);
        assert!(!Term::Var(x).is_nested());
    }

    #[test]
    fn grounding_terms() {
        let mut syms = SymbolTable::new();
        let x = syms.var("x");
        let y = syms.var("y");
        let f = syms.func("f");
        let a = syms.constant("a");
        let t = Term::app(f, vec![Term::Var(x), Term::Var(y)]);
        let assign = |v: VarId| if v == x { Some(a) } else { None };
        assert_eq!(t.ground(&assign), None);
        let assign2 = |_: VarId| Some(a);
        assert_eq!(
            t.ground(&assign2),
            Some(GroundTerm::App(
                f,
                vec![GroundTerm::Const(a), GroundTerm::Const(a)]
            ))
        );
    }

    #[test]
    fn display_round_trip_shape() {
        let mut syms = SymbolTable::new();
        let x = syms.var("x1");
        let f = syms.func("f");
        let a = syms.constant("a_1");
        let t = Term::app(f, vec![Term::Var(x)]);
        assert_eq!(t.display(&syms).to_string(), "f(x1)");
        let g = GroundTerm::App(f, vec![GroundTerm::Const(a)]);
        assert_eq!(g.display(&syms).to_string(), "f(a_1)");
    }

    #[test]
    fn collect_vars_and_funcs() {
        let mut syms = SymbolTable::new();
        let x = syms.var("x");
        let f = syms.func("f");
        let g = syms.func("g");
        let t = Term::app(g, vec![Term::app(f, vec![Term::Var(x)]), Term::Var(x)]);
        let mut vs = vec![];
        t.collect_vars(&mut vs);
        assert_eq!(vs, vec![x, x]);
        let mut fs = vec![];
        t.collect_funcs(&mut fs);
        assert_eq!(fs, vec![g, f]);
    }

    #[test]
    fn ground_term_const_mapping() {
        let mut syms = SymbolTable::new();
        let f = syms.func("f");
        let a = syms.constant("a");
        let b = syms.constant("b");
        let t = GroundTerm::App(f, vec![GroundTerm::Const(a)]);
        let mapped = t.map_consts(&|c| if c == a { b } else { c });
        assert_eq!(mapped, GroundTerm::App(f, vec![GroundTerm::Const(b)]));
    }
}
