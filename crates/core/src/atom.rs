//! Atoms: relational atoms over variables (bodies and heads of tgds) and
//! over terms (heads of SO tgds).

use crate::symbol::{RelId, SymbolTable, VarId};
use crate::term::Term;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A relational atom `R(x1, ..., xk)` whose arguments are variables.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Atom {
    /// The relation symbol.
    pub rel: RelId,
    /// The argument variables (not necessarily distinct).
    pub args: Vec<VarId>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(rel: RelId, args: impl Into<Vec<VarId>>) -> Self {
        Atom {
            rel,
            args: args.into(),
        }
    }

    /// Renders the atom, e.g. `S(x1,x2)`.
    pub fn display<'a>(&'a self, syms: &'a SymbolTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Atom, &'a SymbolTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}(", self.1.rel_name(self.0.rel))?;
                for (i, v) in self.0.args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", self.1.var_name(*v))?;
                }
                write!(f, ")")
            }
        }
        D(self, syms)
    }
}

/// A relational atom `T(t1, ..., tl)` whose arguments are terms,
/// as appearing in the conclusions of SO tgds.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct TermAtom {
    /// The relation symbol.
    pub rel: RelId,
    /// The argument terms.
    pub args: Vec<Term>,
}

impl TermAtom {
    /// Creates a term atom.
    pub fn new(rel: RelId, args: impl Into<Vec<Term>>) -> Self {
        TermAtom {
            rel,
            args: args.into(),
        }
    }

    /// A term atom whose arguments are all plain variables.
    pub fn from_vars(rel: RelId, vars: &[VarId]) -> Self {
        TermAtom {
            rel,
            args: vars.iter().map(|&v| Term::Var(v)).collect(),
        }
    }

    /// Does any argument contain a nested term?
    pub fn has_nested_term(&self) -> bool {
        self.args.iter().any(Term::is_nested)
    }

    /// Renders the atom, e.g. `R(f(x),y)`.
    pub fn display<'a>(&'a self, syms: &'a SymbolTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a TermAtom, &'a SymbolTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}(", self.1.rel_name(self.0.rel))?;
                for (i, t) in self.0.args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", t.display(self.1))?;
                }
                write!(f, ")")
            }
        }
        D(self, syms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_display() {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S");
        let x = syms.var("x1");
        let y = syms.var("x2");
        let a = Atom::new(s, vec![x, y]);
        assert_eq!(a.display(&syms).to_string(), "S(x1,x2)");
    }

    #[test]
    fn term_atom_nestedness() {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        let x = syms.var("x");
        let f = syms.func("f");
        let g = syms.func("g");
        let plain = TermAtom::new(r, vec![Term::app(f, vec![Term::Var(x)])]);
        assert!(!plain.has_nested_term());
        let nested = TermAtom::new(
            r,
            vec![Term::app(g, vec![Term::app(f, vec![Term::Var(x)])])],
        );
        assert!(nested.has_nested_term());
        assert_eq!(nested.display(&syms).to_string(), "R(g(f(x)))");
    }

    #[test]
    fn term_atom_from_vars() {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        let x = syms.var("x");
        let ta = TermAtom::from_vars(r, &[x, x]);
        assert_eq!(ta.args, vec![Term::Var(x), Term::Var(x)]);
    }
}
