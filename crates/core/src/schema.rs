//! Schemas: finite sequences of relation symbols with fixed arities, split
//! into a *source* and a *target* schema with no symbols in common
//! (paper, Section 2).

use crate::error::{CoreError, Result};
use crate::symbol::{RelId, SymbolTable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Whether a relation belongs to the source or target schema.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Side {
    /// Source schema **S** — instances over it contain only constants.
    Source,
    /// Target schema **T** — instances may contain constants and nulls.
    Target,
}

/// A pair of source/target schemas with per-relation arities.
///
/// Built incrementally while parsing dependencies: the first occurrence of a
/// relation fixes its arity and side; later conflicting occurrences are
/// reported as errors.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Schema {
    rels: BTreeMap<RelId, (usize, Side)>,
}

impl Schema {
    /// Creates an empty schema pair.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares (or re-checks) a relation with the given arity and side.
    pub fn declare(&mut self, rel: RelId, arity: usize, side: Side) -> Result<()> {
        match self.rels.get(&rel) {
            None => {
                self.rels.insert(rel, (arity, side));
                Ok(())
            }
            Some(&(a, s)) => {
                if a != arity {
                    Err(CoreError::ArityMismatch {
                        rel,
                        expected: a,
                        found: arity,
                    })
                } else if s != side {
                    Err(CoreError::SideMismatch { rel })
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Arity of a declared relation.
    pub fn arity(&self, rel: RelId) -> Option<usize> {
        self.rels.get(&rel).map(|&(a, _)| a)
    }

    /// Side of a declared relation.
    pub fn side(&self, rel: RelId) -> Option<Side> {
        self.rels.get(&rel).map(|&(_, s)| s)
    }

    /// Iterates over all declared relations as `(rel, arity, side)`.
    pub fn relations(&self) -> impl Iterator<Item = (RelId, usize, Side)> + '_ {
        self.rels.iter().map(|(&r, &(a, s))| (r, a, s))
    }

    /// All relations on one side.
    pub fn side_relations(&self, side: Side) -> Vec<RelId> {
        self.rels
            .iter()
            .filter(|&(_, &(_, s))| s == side)
            .map(|(&r, _)| r)
            .collect()
    }

    /// Merges another schema into this one, checking consistency.
    pub fn merge(&mut self, other: &Schema) -> Result<()> {
        for (r, a, s) in other.relations() {
            self.declare(r, a, s)?;
        }
        Ok(())
    }

    /// Human-readable rendering, e.g. `S: S1/1, S2/1; T: R2/2`.
    pub fn display(&self, syms: &SymbolTable) -> String {
        let fmt_side = |side: Side| {
            self.rels
                .iter()
                .filter(|&(_, &(_, s))| s == side)
                .map(|(&r, &(a, _))| format!("{}/{}", syms.rel_name(r), a))
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "S: {}; T: {}",
            fmt_side(Side::Source),
            fmt_side(Side::Target)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_requery() {
        let mut syms = SymbolTable::new();
        let mut sch = Schema::new();
        let s = syms.rel("S");
        sch.declare(s, 2, Side::Source).unwrap();
        assert_eq!(sch.arity(s), Some(2));
        assert_eq!(sch.side(s), Some(Side::Source));
        // Re-declaring identically is fine.
        sch.declare(s, 2, Side::Source).unwrap();
    }

    #[test]
    fn arity_conflicts_are_rejected() {
        let mut syms = SymbolTable::new();
        let mut sch = Schema::new();
        let s = syms.rel("S");
        sch.declare(s, 2, Side::Source).unwrap();
        assert!(sch.declare(s, 3, Side::Source).is_err());
    }

    #[test]
    fn source_target_overlap_is_rejected() {
        let mut syms = SymbolTable::new();
        let mut sch = Schema::new();
        let s = syms.rel("S");
        sch.declare(s, 2, Side::Source).unwrap();
        assert!(sch.declare(s, 2, Side::Target).is_err());
    }

    #[test]
    fn merge_checks_consistency() {
        let mut syms = SymbolTable::new();
        let r = syms.rel("R");
        let mut a = Schema::new();
        a.declare(r, 1, Side::Target).unwrap();
        let mut b = Schema::new();
        b.declare(r, 2, Side::Target).unwrap();
        assert!(a.clone().merge(&b).is_err());
        let mut c = Schema::new();
        c.declare(r, 1, Side::Target).unwrap();
        a.merge(&c).unwrap();
    }

    #[test]
    fn display_lists_both_sides() {
        let mut syms = SymbolTable::new();
        let mut sch = Schema::new();
        let s = syms.rel("S");
        let r = syms.rel("R");
        sch.declare(s, 1, Side::Source).unwrap();
        sch.declare(r, 2, Side::Target).unwrap();
        assert_eq!(sch.display(&syms), "S: S/1; T: R/2");
    }
}
