//! String interning for the four symbol namespaces used by dependencies:
//! relation names, variables, constants, and (Skolem) function symbols.
//!
//! All hot data structures (facts, atoms, terms) carry `u32` newtype ids;
//! the [`SymbolTable`] is only touched when parsing or printing.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub struct $name(pub u32);

        impl $name {
            /// Index into per-namespace dense arrays.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a relation symbol.
    RelId
);
id_type!(
    /// Identifier of a first-order variable.
    VarId
);
id_type!(
    /// Identifier of a constant.
    ConstId
);
id_type!(
    /// Identifier of a function symbol (Skolem function).
    FuncId
);

/// One interning namespace: bidirectional `String <-> u32`.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
struct Namespace {
    names: Vec<String>,
    ids: HashMap<String, u32>,
}

impl Namespace {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    fn fresh(&mut self, prefix: &str) -> u32 {
        // Find an unused name `prefix`, `prefix_1`, `prefix_2`, ...
        if !self.ids.contains_key(prefix) {
            return self.intern(prefix);
        }
        let mut i = 1usize;
        loop {
            let cand = format!("{prefix}_{i}");
            if !self.ids.contains_key(&cand) {
                return self.intern(&cand);
            }
            i += 1;
        }
    }

    fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    fn lookup(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

/// Interner for all symbol namespaces appearing in schemas, dependencies and
/// instances.
///
/// A `SymbolTable` is shared by everything participating in one reasoning
/// session: schemas, mappings, instances and chase results all refer to it.
/// Interning requires `&mut`; resolution only `&`.
///
/// ```
/// use ndl_core::symbol::SymbolTable;
/// let mut syms = SymbolTable::new();
/// let r = syms.rel("R");
/// assert_eq!(syms.rel("R"), r);
/// assert_eq!(syms.rel_name(r), "R");
/// ```
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct SymbolTable {
    rels: Namespace,
    vars: Namespace,
    consts: Namespace,
    funcs: Namespace,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a relation name.
    pub fn rel(&mut self, name: &str) -> RelId {
        RelId(self.rels.intern(name))
    }

    /// Interns a variable name.
    pub fn var(&mut self, name: &str) -> VarId {
        VarId(self.vars.intern(name))
    }

    /// Interns a constant name.
    pub fn constant(&mut self, name: &str) -> ConstId {
        ConstId(self.consts.intern(name))
    }

    /// Interns a function symbol name.
    pub fn func(&mut self, name: &str) -> FuncId {
        FuncId(self.funcs.intern(name))
    }

    /// Returns a constant with a name not used before, based on `prefix`.
    pub fn fresh_const(&mut self, prefix: &str) -> ConstId {
        ConstId(self.consts.fresh(prefix))
    }

    /// Returns a variable with a name not used before, based on `prefix`.
    pub fn fresh_var(&mut self, prefix: &str) -> VarId {
        VarId(self.vars.fresh(prefix))
    }

    /// Returns a function symbol with a name not used before, based on `prefix`.
    pub fn fresh_func(&mut self, prefix: &str) -> FuncId {
        FuncId(self.funcs.fresh(prefix))
    }

    /// Resolves a relation id to its name.
    pub fn rel_name(&self, id: RelId) -> &str {
        self.rels.name(id.0)
    }

    /// Resolves a variable id to its name.
    pub fn var_name(&self, id: VarId) -> &str {
        self.vars.name(id.0)
    }

    /// Resolves a constant id to its name.
    pub fn const_name(&self, id: ConstId) -> &str {
        self.consts.name(id.0)
    }

    /// Resolves a function symbol id to its name.
    pub fn func_name(&self, id: FuncId) -> &str {
        self.funcs.name(id.0)
    }

    /// Looks up a relation by name without interning.
    pub fn find_rel(&self, name: &str) -> Option<RelId> {
        self.rels.lookup(name).map(RelId)
    }

    /// Looks up a variable by name without interning.
    pub fn find_var(&self, name: &str) -> Option<VarId> {
        self.vars.lookup(name).map(VarId)
    }

    /// Looks up a constant by name without interning.
    pub fn find_const(&self, name: &str) -> Option<ConstId> {
        self.consts.lookup(name).map(ConstId)
    }

    /// Number of interned relation symbols.
    pub fn num_rels(&self) -> usize {
        self.rels.len()
    }

    /// Number of interned constants.
    pub fn num_consts(&self) -> usize {
        self.consts.len()
    }

    /// Number of interned function symbols.
    pub fn num_funcs(&self) -> usize {
        self.funcs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.rel("Emp");
        let b = t.rel("Emp");
        assert_eq!(a, b);
        assert_eq!(t.rel_name(a), "Emp");
    }

    #[test]
    fn namespaces_are_disjoint() {
        let mut t = SymbolTable::new();
        let r = t.rel("X");
        let v = t.var("X");
        let c = t.constant("X");
        let f = t.func("X");
        // Same underlying index is fine; namespaces keep them apart.
        assert_eq!(t.rel_name(r), "X");
        assert_eq!(t.var_name(v), "X");
        assert_eq!(t.const_name(c), "X");
        assert_eq!(t.func_name(f), "X");
    }

    #[test]
    fn fresh_constants_avoid_collisions() {
        let mut t = SymbolTable::new();
        let a = t.constant("a");
        let a1 = t.fresh_const("a");
        let a2 = t.fresh_const("a");
        assert_ne!(a, a1);
        assert_ne!(a1, a2);
        assert_eq!(t.const_name(a1), "a_1");
        assert_eq!(t.const_name(a2), "a_2");
    }

    #[test]
    fn lookup_does_not_intern() {
        let t = SymbolTable::new();
        assert!(t.find_rel("nope").is_none());
    }

    #[test]
    fn fresh_without_collision_uses_prefix() {
        let mut t = SymbolTable::new();
        let f = t.fresh_func("f");
        assert_eq!(t.func_name(f), "f");
    }
}
