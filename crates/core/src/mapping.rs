//! Schema mappings `M = (S, T, Σ)` (paper, Section 2).
//!
//! The central object of the paper is the **nested GLAV mapping**: a schema
//! mapping specified by a finite set of nested tgds, optionally together
//! with egds over the source schema (Section 5).

use crate::dep::{Egd, NestedTgd, SoTgd, StTgd};
use crate::error::{CoreError, Result};
use crate::parse;
use crate::schema::Schema;
use crate::symbol::SymbolTable;
use serde::{Deserialize, Serialize};

/// A nested GLAV mapping: source/target schemas, a finite set of nested
/// tgds, and (optionally) source egds.
///
/// GLAV mappings are the special case where every nested tgd has a single
/// part; see [`NestedMapping::is_glav`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NestedMapping {
    /// The combined source/target schema, derived from the dependencies.
    pub schema: Schema,
    /// The nested tgds Σ.
    pub tgds: Vec<NestedTgd>,
    /// Egds over the source schema (empty unless Section 5 settings).
    pub source_egds: Vec<Egd>,
}

impl NestedMapping {
    /// Creates a mapping from validated parts.
    pub fn new(tgds: Vec<NestedTgd>, source_egds: Vec<Egd>) -> Result<Self> {
        let mut errs = Vec::new();
        let schema = Self::check(&tgds, &source_egds, &mut errs);
        if let Some(e) = errs.into_iter().next() {
            return Err(e);
        }
        Ok(NestedMapping {
            schema,
            tgds,
            source_egds,
        })
    }

    /// Validates every dependency against one shared schema, collecting all
    /// problems into `out` instead of stopping at the first. Returns the
    /// (possibly partial) schema — the diagnostics framework entry point
    /// for whole programs.
    pub fn check(tgds: &[NestedTgd], source_egds: &[Egd], out: &mut Vec<CoreError>) -> Schema {
        let mut schema = Schema::new();
        for t in tgds {
            t.check(&mut schema, out);
        }
        for e in source_egds {
            e.check(&mut schema, out);
        }
        schema
    }

    /// Parses a mapping from textual tgds (and optionally egds).
    pub fn parse(syms: &mut SymbolTable, tgds: &[&str], egds: &[&str]) -> Result<Self> {
        let tgds = tgds
            .iter()
            .map(|s| parse::parse_nested_tgd(syms, s))
            .collect::<Result<Vec<_>>>()?;
        let egds = egds
            .iter()
            .map(|s| parse::parse_egd(syms, s))
            .collect::<Result<Vec<_>>>()?;
        Self::new(tgds, egds)
    }

    /// Is this syntactically a GLAV mapping (every tgd a single part)?
    pub fn is_glav(&self) -> bool {
        self.tgds.iter().all(NestedTgd::is_st_tgd)
    }

    /// The s-t tgds, if this is syntactically GLAV.
    pub fn to_st_tgds(&self) -> Option<Vec<StTgd>> {
        self.tgds.iter().map(NestedTgd::to_st_tgd).collect()
    }

    /// Builds a GLAV mapping from s-t tgds.
    pub fn from_st_tgds(tgds: Vec<StTgd>, source_egds: Vec<Egd>) -> Result<Self> {
        Self::new(tgds.into_iter().map(Into::into).collect(), source_egds)
    }

    /// Renders all constraints, one per line.
    pub fn display(&self, syms: &SymbolTable) -> String {
        let mut lines: Vec<String> = self.tgds.iter().map(|t| t.display(syms)).collect();
        lines.extend(self.source_egds.iter().map(|e| e.display(syms)));
        lines.join("\n")
    }
}

/// A schema mapping specified by a single SO tgd (optionally with source
/// egds), as studied in Sections 4.2 and 5 of the paper.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SoMapping {
    /// The combined source/target schema.
    pub schema: Schema,
    /// The SO tgd σ.
    pub tgd: SoTgd,
    /// Egds over the source schema.
    pub source_egds: Vec<Egd>,
}

impl SoMapping {
    /// Creates a validated SO mapping.
    pub fn new(tgd: SoTgd, source_egds: Vec<Egd>) -> Result<Self> {
        let mut errs = Vec::new();
        let schema = Self::check(&tgd, &source_egds, &mut errs);
        if let Some(e) = errs.into_iter().next() {
            return Err(e);
        }
        Ok(SoMapping {
            schema,
            tgd,
            source_egds,
        })
    }

    /// Validates the SO tgd and egds against one shared schema, collecting
    /// all problems into `out`. Returns the (possibly partial) schema.
    pub fn check(tgd: &SoTgd, source_egds: &[Egd], out: &mut Vec<CoreError>) -> Schema {
        let mut schema = Schema::new();
        tgd.check(&mut schema, out);
        for e in source_egds {
            e.check(&mut schema, out);
        }
        schema
    }

    /// Parses an SO mapping from text.
    pub fn parse(syms: &mut SymbolTable, tgd: &str, egds: &[&str]) -> Result<Self> {
        let tgd = parse::parse_so_tgd(syms, tgd)?;
        let egds = egds
            .iter()
            .map(|s| parse::parse_egd(syms, s))
            .collect::<Result<Vec<_>>>()?;
        Self::new(tgd, egds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_mapping_and_classify() {
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(
            &mut syms,
            &["S(x,y) -> exists z R(x,z)"],
            &["S(x,y) & S(x2,y) -> x = x2"],
        )
        .unwrap();
        assert!(m.is_glav());
        assert_eq!(m.to_st_tgds().unwrap().len(), 1);
        assert_eq!(m.source_egds.len(), 1);
    }

    #[test]
    fn nested_mapping_is_not_glav() {
        let mut syms = SymbolTable::new();
        let m = NestedMapping::parse(
            &mut syms,
            &["forall x1 (S1(x1) -> exists y (forall x2 (S2(x2) -> R(y,x2))))"],
            &[],
        )
        .unwrap();
        assert!(!m.is_glav());
        assert!(m.to_st_tgds().is_none());
    }

    #[test]
    fn schema_conflicts_across_tgds_are_caught() {
        let mut syms = SymbolTable::new();
        let r = NestedMapping::parse(
            &mut syms,
            &["S(x) -> R(x)", "R(x) -> T(x)"], // R used on both sides
            &[],
        );
        assert!(r.is_err());
    }

    #[test]
    fn so_mapping_parses() {
        let mut syms = SymbolTable::new();
        let m = SoMapping::parse(&mut syms, "exists f . S(x,y) -> R(f(x),f(y))", &[]).unwrap();
        assert!(m.tgd.is_plain());
    }

    #[test]
    fn display_joins_constraints() {
        let mut syms = SymbolTable::new();
        let m =
            NestedMapping::parse(&mut syms, &["S(x) -> R(x)"], &["S(x) & S(y) -> x = y"]).unwrap();
        let d = m.display(&syms);
        assert!(d.contains("S(x) -> R(x)"));
        assert!(d.contains("x = y"));
    }
}
