//! Skolemization of nested tgds (paper, Section 2).
//!
//! Every existential variable `y` of a part σᵢ is replaced by the Skolem
//! term `f(x⃗)` where `f` is a fresh function symbol and `x⃗` is the vector
//! of universal variables of σᵢ and its ancestors. The result, flattened to
//! one clause per part, is a **plain SO tgd** — this witnesses the inclusion
//! "nested tgds ⊆ plain SO tgds".

use crate::atom::{Atom, TermAtom};
use crate::dep::nested::{NestedTgd, PartId};
use crate::dep::so_tgd::{SoClause, SoTgd};
use crate::symbol::{FuncId, SymbolTable, VarId};
use crate::term::Term;
use std::collections::BTreeMap;

/// The Skolem assignment of a nested tgd: for every existential variable,
/// the fresh function symbol and the universal variables it is applied to.
#[derive(Clone, Debug)]
pub struct SkolemInfo {
    /// `y ↦ (f, x⃗)` for each existential variable `y`.
    pub assignment: BTreeMap<VarId, (FuncId, Vec<VarId>)>,
    /// The fresh function symbols in introduction order (paper order:
    /// `f, g, h, …` following the parts top-down).
    pub funcs: Vec<FuncId>,
}

impl SkolemInfo {
    /// Computes the Skolem assignment for a nested tgd, interning fresh
    /// function symbols. Function names follow the paper's convention
    /// `f, g, h, f4, f5, …` in order of appearance.
    pub fn for_nested(tgd: &NestedTgd, syms: &mut SymbolTable) -> SkolemInfo {
        let mut assignment = BTreeMap::new();
        let mut funcs = Vec::new();
        let mut counter = 0usize;
        // Pre-order traversal so names follow the textual order of the tgd.
        let mut order = vec![tgd.root()];
        order.extend(tgd.descendants(tgd.root()));
        for part in order {
            let args = tgd.visible_universals(part);
            for &y in &tgd.part(part).existentials {
                let name = skolem_name(counter);
                counter += 1;
                let f = syms.fresh_func(&name);
                assignment.insert(y, (f, args.clone()));
                funcs.push(f);
            }
        }
        SkolemInfo { assignment, funcs }
    }

    /// The Skolem term `f(x⃗)` for existential variable `y`, if `y` is
    /// existential in this tgd.
    pub fn term_for(&self, y: VarId) -> Option<Term> {
        self.assignment
            .get(&y)
            .map(|(f, args)| Term::App(*f, args.iter().map(|&v| Term::Var(v)).collect()))
    }

    /// The existential variable a Skolem function stands for (reverse of
    /// the assignment), if `f` was introduced by this Skolemization.
    pub fn existential_of(&self, f: FuncId) -> Option<VarId> {
        self.assignment
            .iter()
            .find(|(_, (g, _))| *g == f)
            .map(|(&y, _)| y)
    }

    /// The universal variables a Skolem function is applied to, if `f` was
    /// introduced by this Skolemization.
    pub fn args_of(&self, f: FuncId) -> Option<&[VarId]> {
        self.assignment
            .values()
            .find(|(g, _)| *g == f)
            .map(|(_, args)| args.as_slice())
    }
}

/// Names `f, g, h` then `f4, f5, ...` like the paper's examples.
fn skolem_name(i: usize) -> String {
    match i {
        0 => "f".to_string(),
        1 => "g".to_string(),
        2 => "h".to_string(),
        n => format!("f{}", n + 1),
    }
}

/// Skolemizes a nested tgd into an equivalent **plain** SO tgd with one
/// clause per part. The clause for part σᵢ has body = the conjunction of the
/// bodies of σᵢ and all its ancestors, and head = the head atoms of σᵢ with
/// existential variables replaced by their Skolem terms. Parts with empty
/// heads produce no clause.
pub fn skolemize(tgd: &NestedTgd, syms: &mut SymbolTable) -> (SoTgd, SkolemInfo) {
    let info = SkolemInfo::for_nested(tgd, syms);
    let so = skolemize_with(tgd, &info);
    (so, info)
}

/// Skolemizes with a pre-computed Skolem assignment (used by the chase so
/// that nulls are labeled consistently with the reasoning procedures).
pub fn skolemize_with(tgd: &NestedTgd, info: &SkolemInfo) -> SoTgd {
    let mut clauses = Vec::new();
    let mut order = vec![tgd.root()];
    order.extend(tgd.descendants(tgd.root()));
    for part in order {
        let head_atoms = &tgd.part(part).head;
        if head_atoms.is_empty() {
            continue;
        }
        let body = accumulated_body(tgd, part);
        let head: Vec<TermAtom> = head_atoms.iter().map(|a| skolemize_atom(a, info)).collect();
        clauses.push(SoClause::new(body, vec![], head));
    }
    SoTgd::new(info.funcs.clone(), clauses)
}

/// The conjunction of the body atoms of `part` and all of its ancestors,
/// root-first — the antecedent of the flattened clause for `part`.
pub fn accumulated_body(tgd: &NestedTgd, part: PartId) -> Vec<Atom> {
    let mut body = Vec::new();
    for p in tgd.ancestors(part) {
        body.extend(tgd.part(p).body.iter().cloned());
    }
    body.extend(tgd.part(part).body.iter().cloned());
    body
}

fn skolemize_atom(a: &Atom, info: &SkolemInfo) -> TermAtom {
    TermAtom::new(
        a.rel,
        a.args
            .iter()
            .map(|&v| info.term_for(v).unwrap_or(Term::Var(v)))
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dep::nested::Part;
    use crate::schema::Schema;

    /// The running example σ of Section 2; its Skolemization is displayed in
    /// the paper as
    /// σ1: ∀x1 (S1(x1) →
    /// σ2:   (∀x2 (S2(x2) → R2(f(x1),x2)) ∧
    /// σ3:    ∀x3 (S3(x1,x3) → (R3(f(x1),x3) ∧
    /// σ4:      ∀x4 (S4(x3,x4) → R4(g(x1,x3,x4),x4))))).
    fn running_example(syms: &mut SymbolTable) -> NestedTgd {
        let s1 = syms.rel("S1");
        let s2 = syms.rel("S2");
        let s3 = syms.rel("S3");
        let s4 = syms.rel("S4");
        let r2 = syms.rel("R2");
        let r3 = syms.rel("R3");
        let r4 = syms.rel("R4");
        let x1 = syms.var("x1");
        let x2 = syms.var("x2");
        let x3 = syms.var("x3");
        let x4 = syms.var("x4");
        let y1 = syms.var("y1");
        let y2 = syms.var("y2");
        NestedTgd::from_parts(vec![
            Part {
                parent: None,
                universals: vec![x1],
                body: vec![Atom::new(s1, vec![x1])],
                existentials: vec![y1],
                head: vec![],
                children: vec![1, 2],
            },
            Part {
                parent: Some(0),
                universals: vec![x2],
                body: vec![Atom::new(s2, vec![x2])],
                existentials: vec![],
                head: vec![Atom::new(r2, vec![y1, x2])],
                children: vec![],
            },
            Part {
                parent: Some(0),
                universals: vec![x3],
                body: vec![Atom::new(s3, vec![x1, x3])],
                existentials: vec![],
                head: vec![Atom::new(r3, vec![y1, x3])],
                children: vec![3],
            },
            Part {
                parent: Some(2),
                universals: vec![x4],
                body: vec![Atom::new(s4, vec![x3, x4])],
                existentials: vec![y2],
                head: vec![Atom::new(r4, vec![y2, x4])],
                children: vec![],
            },
        ])
    }

    #[test]
    fn skolem_terms_match_paper() {
        let mut syms = SymbolTable::new();
        let tgd = running_example(&mut syms);
        let (so, info) = skolemize(&tgd, &mut syms);
        assert!(so.is_plain());
        let mut sch = Schema::new();
        so.validate(&mut sch).unwrap();

        // y1 ↦ f(x1); y2 ↦ g(x1, x3, x4).
        let y1 = syms.var("y1");
        let y2 = syms.var("y2");
        let t1 = info.term_for(y1).unwrap();
        let t2 = info.term_for(y2).unwrap();
        assert_eq!(t1.display(&syms).to_string(), "f(x1)");
        assert_eq!(t2.display(&syms).to_string(), "g(x1,x3,x4)");

        // Three clauses: σ2, σ3, σ4 (σ1 has an empty head).
        assert_eq!(so.clauses.len(), 3);
        // Clause for σ2 accumulates the root body.
        assert_eq!(so.clauses[0].body.len(), 2);
        assert_eq!(
            so.clauses[0].head[0].display(&syms).to_string(),
            "R2(f(x1),x2)"
        );
        assert_eq!(
            so.clauses[2].head[0].display(&syms).to_string(),
            "R4(g(x1,x3,x4),x4)"
        );
        // v_σ (occurring Skolem functions) is 2.
        assert_eq!(so.occurring_funcs().len(), 2);
    }

    #[test]
    fn st_tgd_skolemizes_to_single_clause() {
        let mut syms = SymbolTable::new();
        let s = syms.rel("S2");
        let r = syms.rel("R");
        let x = syms.var("x2");
        let z = syms.var("z");
        let tgd: NestedTgd = crate::dep::st_tgd::StTgd::new(
            vec![Atom::new(s, vec![x])],
            vec![z],
            vec![Atom::new(r, vec![x, z])],
        )
        .into();
        let (so, _) = skolemize(&tgd, &mut syms);
        assert_eq!(so.clauses.len(), 1);
        assert_eq!(so.display(&syms), "exists f . S2(x2) -> R(x2,f(x2))");
    }

    #[test]
    fn reverse_accessors_find_existential_and_args() {
        let mut syms = SymbolTable::new();
        let tgd = running_example(&mut syms);
        let (_, info) = skolemize(&tgd, &mut syms);
        let y2 = syms.var("y2");
        let (g, _) = info.assignment[&y2];
        assert_eq!(info.existential_of(g), Some(y2));
        assert_eq!(info.args_of(g).map(<[_]>::len), Some(3));
        let unrelated = syms.func("unrelated");
        assert_eq!(info.existential_of(unrelated), None);
        assert!(info.args_of(unrelated).is_none());
    }

    #[test]
    fn skolem_names_are_collision_free() {
        let mut syms = SymbolTable::new();
        syms.func("f"); // pre-existing symbol named "f"
        let tgd = running_example(&mut syms);
        let (_, info) = skolemize(&tgd, &mut syms);
        // The first Skolem function must avoid the existing "f".
        assert_eq!(syms.func_name(info.funcs[0]), "f_1");
    }

    #[test]
    fn fresh_info_per_call() {
        let mut syms = SymbolTable::new();
        let tgd = running_example(&mut syms);
        let (_, i1) = skolemize(&tgd, &mut syms);
        let (_, i2) = skolemize(&tgd, &mut syms);
        assert_ne!(i1.funcs, i2.funcs);
    }
}
