//! # ndl-core
//!
//! Logical foundations for reasoning about schema mappings specified by
//! **nested tgds**, after Kolaitis, Pichler, Sallinger, Savenkov,
//! *Nested Dependencies: Structure and Reasoning*, PODS 2014.
//!
//! This crate provides:
//! - interned symbols, values (constants/labeled nulls), terms and ground
//!   terms ([`symbol`], [`value`], [`term`]);
//! - schemas, atoms, facts and instances ([`schema`], [`atom`], [`instance`])
//!   backed by an arena-backed columnar fact store with stable ids
//!   ([`store`]; the pre-columnar B-tree layout survives in [`btree`] as a
//!   test/bench baseline);
//! - a shared, updatable `(rel, pos, value) → facts` index keyed by stable
//!   ids ([`index`]) and fast hash containers ([`hash`]);
//! - the dependency classes of the paper: s-t tgds, nested tgds, (plain)
//!   SO tgds and source egds ([`dep`]);
//! - a text parser and pretty printers ([`parse`]);
//! - Skolemization of nested tgds into plain SO tgds ([`skolem`]);
//! - schema-mapping containers ([`mapping`]).
//!
//! The chase lives in `ndl-chase`, homomorphisms/cores in `ndl-hom`, and
//! the paper's decision procedures in `ndl-reasoning`.
//!
//! ## Quick example
//!
//! ```
//! use ndl_core::prelude::*;
//!
//! let mut syms = SymbolTable::new();
//! let tgd = parse_nested_tgd(
//!     &mut syms,
//!     "forall x1,x2 (S(x1,x2) -> exists y (R(y,x2) & forall x3 (S(x1,x3) -> R(y,x3))))",
//! )
//! .unwrap();
//! assert_eq!(tgd.num_parts(), 2);
//! let (so, _info) = skolemize(&tgd, &mut syms);
//! assert!(so.is_plain());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atom;
pub mod btree;
pub mod dep;
pub mod error;
pub mod hash;
pub mod index;
pub mod instance;
pub mod mapping;
pub mod parse;
pub mod schema;
#[cfg(test)]
mod serde_tests;
pub mod skolem;
pub mod span;
pub mod store;
pub mod symbol;
pub mod term;
pub mod value;

/// Convenience re-exports of the most common types.
pub mod prelude {
    pub use crate::atom::{Atom, TermAtom};
    pub use crate::dep::{Egd, NestedTgd, Part, PartId, SoClause, SoTgd, StTgd};
    pub use crate::error::{CoreError, Result};
    pub use crate::hash::{FxBuildHasher, FxHashMap, FxHashSet};
    pub use crate::index::{TupleId, TupleIndex};
    pub use crate::instance::{Fact, FactRef, Instance};
    pub use crate::mapping::{NestedMapping, SoMapping};
    pub use crate::parse::{parse_egd, parse_fact, parse_nested_tgd, parse_so_tgd, parse_st_tgd};
    pub use crate::schema::{Schema, Side};
    pub use crate::skolem::{skolemize, skolemize_with, SkolemInfo};
    pub use crate::span::Span;
    pub use crate::store::{FactId, FactStore, Inserted, StoreCounters};
    pub use crate::symbol::{ConstId, FuncId, RelId, SymbolTable, VarId};
    pub use crate::term::{GroundTerm, Term};
    pub use crate::value::{NullId, Value};
}
