//! Error types for the core crate.

use crate::symbol::{RelId, VarId};
use std::fmt;

/// Result alias for core operations.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised while building or validating schemas and dependencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// A relation was used with two different arities.
    ArityMismatch {
        /// The offending relation.
        rel: RelId,
        /// Arity fixed by the first occurrence.
        expected: usize,
        /// Arity of the conflicting occurrence.
        found: usize,
    },
    /// A relation was used on both the source and the target side.
    SideMismatch {
        /// The offending relation.
        rel: RelId,
    },
    /// A universally quantified variable does not occur in any body atom of
    /// its part (safety condition of tgds).
    UnsafeVariable {
        /// The offending variable.
        var: VarId,
    },
    /// A variable was used without being quantified in scope.
    UnboundVariable {
        /// The offending variable.
        var: VarId,
    },
    /// A variable was quantified twice in nested scopes.
    ShadowedVariable {
        /// The offending variable.
        var: VarId,
    },
    /// Parse error with position and message.
    Parse {
        /// Byte offset in the input.
        offset: usize,
        /// Explanation.
        message: String,
    },
    /// A structural validation failure with a free-form message.
    Invalid(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArityMismatch {
                rel,
                expected,
                found,
            } => write!(
                f,
                "relation {rel:?} used with arity {found}, previously {expected}"
            ),
            CoreError::SideMismatch { rel } => {
                write!(f, "relation {rel:?} used on both source and target side")
            }
            CoreError::UnsafeVariable { var } => {
                write!(f, "universal variable {var:?} occurs in no body atom of its part")
            }
            CoreError::UnboundVariable { var } => write!(f, "variable {var:?} is unbound"),
            CoreError::ShadowedVariable { var } => {
                write!(f, "variable {var:?} is quantified twice in nested scopes")
            }
            CoreError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            CoreError::Invalid(m) => write!(f, "invalid dependency: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = CoreError::Parse {
            offset: 4,
            message: "expected '('".into(),
        };
        assert!(e.to_string().contains("byte 4"));
        let e = CoreError::UnsafeVariable { var: VarId(1) };
        assert!(e.to_string().contains("no body atom"));
    }
}
