//! Error types for the core crate.
//!
//! Every [`CoreError`] carries a stable diagnostic code ([`CoreError::code`])
//! and can be re-anchored to a byte span of the statement it arose from
//! ([`CoreError::locate`]) — the substrate of the `ndl-analyze` lint
//! framework and of the `ndl lint` CLI.

use crate::parse::{locate_applied, locate_ident, locate_quantified};
use crate::span::Span;
use crate::symbol::{RelId, SymbolTable, VarId};
use std::fmt;

/// Result alias for core operations.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised while building or validating schemas and dependencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// A relation was used with two different arities.
    ArityMismatch {
        /// The offending relation.
        rel: RelId,
        /// Arity fixed by the first occurrence.
        expected: usize,
        /// Arity of the conflicting occurrence.
        found: usize,
    },
    /// A relation was used on both the source and the target side.
    SideMismatch {
        /// The offending relation.
        rel: RelId,
    },
    /// A universally quantified variable does not occur in any body atom of
    /// its part (safety condition of tgds).
    UnsafeVariable {
        /// The offending variable.
        var: VarId,
    },
    /// A variable was used without being quantified in scope.
    UnboundVariable {
        /// The offending variable.
        var: VarId,
    },
    /// A variable was quantified twice in nested scopes.
    ShadowedVariable {
        /// The offending variable.
        var: VarId,
    },
    /// Parse error with position and message.
    Parse {
        /// Byte offset in the input.
        offset: usize,
        /// Explanation.
        message: String,
    },
    /// A structural validation failure with a free-form message.
    Invalid(String),
}

impl CoreError {
    /// The stable diagnostic code of this error kind (the `NDL0xx` table;
    /// see `docs/lints.md` at the repository root).
    pub fn code(&self) -> &'static str {
        match self {
            CoreError::Parse { .. } => "NDL001",
            CoreError::UnsafeVariable { .. } => "NDL002",
            CoreError::UnboundVariable { .. } => "NDL003",
            CoreError::ShadowedVariable { .. } => "NDL004",
            CoreError::ArityMismatch { .. } => "NDL005",
            CoreError::SideMismatch { .. } => "NDL006",
            CoreError::Invalid(_) => "NDL007",
        }
    }

    /// Renders the message with symbol ids resolved to their names.
    pub fn display(&self, syms: &SymbolTable) -> String {
        match self {
            CoreError::ArityMismatch {
                rel,
                expected,
                found,
            } => format!(
                "relation {} used with arity {found}, previously {expected}",
                syms.rel_name(*rel)
            ),
            CoreError::SideMismatch { rel } => format!(
                "relation {} used on both source and target side",
                syms.rel_name(*rel)
            ),
            CoreError::UnsafeVariable { var } => format!(
                "universal variable {} occurs in no body atom of its part",
                syms.var_name(*var)
            ),
            CoreError::UnboundVariable { var } => {
                format!("variable {} is unbound", syms.var_name(*var))
            }
            CoreError::ShadowedVariable { var } => format!(
                "variable {} is quantified twice in nested scopes",
                syms.var_name(*var)
            ),
            other => other.to_string(),
        }
    }

    /// Best-effort re-location of the error in the statement `text` it was
    /// produced from. Parse errors carry their own offset; validation
    /// errors are anchored by finding the offending symbol's token (see
    /// [`crate::parse::locate`]). `None` when the error has no natural
    /// anchor (e.g. structural [`CoreError::Invalid`] problems).
    pub fn locate(&self, syms: &SymbolTable, text: &str) -> Option<Span> {
        match self {
            CoreError::Parse { offset, .. } => Some(Span::point(*offset)),
            CoreError::UnsafeVariable { var } => {
                let name = syms.var_name(*var);
                locate_quantified(text, name, 0).or_else(|| locate_ident(text, name, 0))
            }
            CoreError::UnboundVariable { var } => locate_ident(text, syms.var_name(*var), 0),
            CoreError::ShadowedVariable { var } => {
                // The second quantified occurrence is the offending one.
                let name = syms.var_name(*var);
                locate_quantified(text, name, 1)
                    .or_else(|| locate_quantified(text, name, 0))
                    .or_else(|| locate_ident(text, name, 0))
            }
            CoreError::ArityMismatch { rel, found, .. } => {
                let name = syms.rel_name(*rel);
                locate_applied(text, name, Some(*found), 0)
                    .or_else(|| locate_applied(text, name, None, 0))
            }
            CoreError::SideMismatch { rel } => {
                let name = syms.rel_name(*rel);
                locate_applied(text, name, None, 0).or_else(|| locate_ident(text, name, 0))
            }
            CoreError::Invalid(_) => None,
        }
    }
}

/// Pushes `err` unless an identical diagnostic was already collected —
/// validation walks can rediscover the same problem at several sites.
pub(crate) fn push_unique(out: &mut Vec<CoreError>, err: CoreError) {
    if !out.contains(&err) {
        out.push(err);
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArityMismatch {
                rel,
                expected,
                found,
            } => write!(
                f,
                "relation {rel:?} used with arity {found}, previously {expected}"
            ),
            CoreError::SideMismatch { rel } => {
                write!(f, "relation {rel:?} used on both source and target side")
            }
            CoreError::UnsafeVariable { var } => {
                write!(
                    f,
                    "universal variable {var:?} occurs in no body atom of its part"
                )
            }
            CoreError::UnboundVariable { var } => write!(f, "variable {var:?} is unbound"),
            CoreError::ShadowedVariable { var } => {
                write!(f, "variable {var:?} is quantified twice in nested scopes")
            }
            CoreError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            CoreError::Invalid(m) => write!(f, "invalid dependency: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = CoreError::Parse {
            offset: 4,
            message: "expected '('".into(),
        };
        assert!(e.to_string().contains("byte 4"));
        let e = CoreError::UnsafeVariable { var: VarId(1) };
        assert!(e.to_string().contains("no body atom"));
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(
            CoreError::Parse {
                offset: 0,
                message: String::new()
            }
            .code(),
            "NDL001"
        );
        assert_eq!(CoreError::UnsafeVariable { var: VarId(0) }.code(), "NDL002");
        assert_eq!(
            CoreError::UnboundVariable { var: VarId(0) }.code(),
            "NDL003"
        );
        assert_eq!(
            CoreError::ShadowedVariable { var: VarId(0) }.code(),
            "NDL004"
        );
        assert_eq!(
            CoreError::ArityMismatch {
                rel: RelId(0),
                expected: 1,
                found: 2
            }
            .code(),
            "NDL005"
        );
        assert_eq!(CoreError::SideMismatch { rel: RelId(0) }.code(), "NDL006");
        assert_eq!(CoreError::Invalid(String::new()).code(), "NDL007");
    }

    #[test]
    fn locate_anchors_validation_errors() {
        let mut syms = SymbolTable::new();
        let text = "forall x,z (S(x) -> R(x))";
        let z = syms.var("z");
        let e = CoreError::UnsafeVariable { var: z };
        assert_eq!(e.locate(&syms, text), Some(Span::new(9, 10)));
        assert!(e.display(&syms).contains("universal variable z"));

        let text2 = "S(x) -> exists x (R(x))";
        let x = syms.var("x");
        let shadow = CoreError::ShadowedVariable { var: x };
        // Implicit top-level universals: the exists list holds the only
        // quantified occurrence, so the fallback finds it.
        assert_eq!(shadow.locate(&syms, text2), Some(Span::new(15, 16)));

        let r = syms.rel("R");
        let text3 = "R(x,y) -> R(x,y,y)";
        let arity = CoreError::ArityMismatch {
            rel: r,
            expected: 2,
            found: 3,
        };
        assert_eq!(arity.locate(&syms, text3), Some(Span::new(10, 11)));

        assert_eq!(CoreError::Invalid("x".into()).locate(&syms, text3), None);
        let parse = CoreError::Parse {
            offset: 7,
            message: String::new(),
        };
        assert_eq!(parse.locate(&syms, text3), Some(Span::point(7)));
    }
}
