//! # ndl-obs
//!
//! Engine observability for the nested-dependency system: counters, timers
//! and event traces for the chase, homomorphism/core and reasoning engines,
//! surfaced through `ndl chase --stats|--trace`, `ndl lint --stats` and the
//! `bench_chase` experiment record (see `docs/observability.md`).
//!
//! The layer is **zero-cost when disabled**: engines are generic over an
//! observer type, every observer method has an empty default body, and the
//! [`NoopObserver`] sets [`ChaseObserver::ENABLED`] to `false` so
//! instrumented hot paths skip even their clock reads. Monomorphization
//! erases the no-op calls entirely — the uninstrumented entry points
//! compile to the same code they did before instrumentation.
//!
//! Three observer families:
//!
//! - [`ChaseObserver`] — sequential chase engines report per-round and
//!   per-statement aggregates (`&mut self`: the chase is single-threaded);
//! - [`HomObserver`] — the homomorphism/core engine reports fine-grained
//!   search events (`&self` + `Sync`: block searches and retraction probes
//!   run on scoped worker threads, so implementations count atomically);
//! - the [`warn`] registry — one-time configuration warnings (e.g. an
//!   ignored `NDL_HOM_THREADS` override) from code with no observer handle.
//!
//! [`Stats`] bundles a [`ChaseStats`] and a [`HomStats`] into the one
//! aggregate most callers want; [`JsonlTracer`] appends one JSON object per
//! event to any [`std::io::Write`] sink.

#![warn(missing_docs)]

pub mod observer;
pub mod stats;
pub mod trace;
pub mod warn;

pub use observer::{ChaseObserver, HomObserver, NoopObserver, StmtRound};
pub use stats::{ChaseStats, HomStats, StageStats, Stats, StmtStats};
pub use trace::JsonlTracer;
pub use warn::{take_warnings, warn_once, warnings, Warning};
