//! A process-wide, one-time warning registry.
//!
//! Configuration code often runs once, early, and with no observer in
//! sight — e.g. `HomConfig::from_env` resolving `NDL_HOM_THREADS` before
//! any engine entry point. When such code must report a problem it calls
//! [`warn_once`]; front ends ([`crate::take_warnings`]) surface the
//! collected warnings at a convenient point (the `ndl` CLI prints them to
//! stderr after each command). Each key warns at most once per process, so
//! a misconfigured environment variable read on every engine call does not
//! flood the log.

use std::sync::{Mutex, OnceLock};

/// One recorded warning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Warning {
    /// Deduplication key, e.g. the environment variable name.
    pub key: String,
    /// Human-readable message.
    pub message: String,
}

fn registry() -> &'static Mutex<Vec<Warning>> {
    static REGISTRY: OnceLock<Mutex<Vec<Warning>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Records a warning unless one with the same `key` was already recorded
/// (including already-taken ones). Returns whether it was recorded.
pub fn warn_once(key: &str, message: impl Into<String>) -> bool {
    let mut reg = registry().lock().expect("warning registry");
    if reg.iter().any(|w| w.key == key) {
        return false;
    }
    reg.push(Warning {
        key: key.to_string(),
        message: message.into(),
    });
    true
}

/// A snapshot of all recorded warnings, in recording order (taken ones
/// included — the registry remembers keys for deduplication).
pub fn warnings() -> Vec<Warning> {
    registry().lock().expect("warning registry").clone()
}

/// Returns the warnings not yet taken and marks them taken. Keys stay
/// registered, so [`warn_once`] still deduplicates against them.
pub fn take_warnings() -> Vec<Warning> {
    static TAKEN: OnceLock<Mutex<usize>> = OnceLock::new();
    let reg = registry().lock().expect("warning registry");
    let mut taken = TAKEN
        .get_or_init(|| Mutex::new(0))
        .lock()
        .expect("taken cursor");
    let fresh = reg[*taken..].to_vec();
    *taken = reg.len();
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warn_once_deduplicates_by_key() {
        assert!(warn_once("TEST_KEY_A", "first"));
        assert!(!warn_once("TEST_KEY_A", "second"));
        let hits: Vec<Warning> = warnings()
            .into_iter()
            .filter(|w| w.key == "TEST_KEY_A")
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].message, "first");
    }

    #[test]
    fn take_returns_each_warning_once() {
        warn_once("TEST_KEY_TAKE", "only");
        // No other test takes, so the first take after recording must
        // surface our key exactly once, and later takes must not repeat it.
        let count = |v: &[Warning]| v.iter().filter(|w| w.key == "TEST_KEY_TAKE").count();
        assert_eq!(count(&take_warnings()), 1);
        assert_eq!(count(&take_warnings()), 0);
        assert!(!warn_once("TEST_KEY_TAKE", "again"));
    }
}
