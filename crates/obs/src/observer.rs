//! The observer traits engines are generic over, and the no-op sink.
//!
//! Engines aggregate locally and report coarse events (one call per
//! statement per round for the chase) or count fine-grained ones (one call
//! per backtrack for the homomorphism search). Every method has an empty
//! default body; an observer overrides only what it cares about. The
//! `ENABLED` associated const lets instrumented code skip *preparing* event
//! data (clock reads, deltas) when the observer is the no-op sink — the
//! calls themselves already monomorphize away.

use ndl_core::store::StoreCounters;

/// Per-statement, per-round aggregate reported by a chase engine: how much
/// work one statement did in one round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StmtRound {
    /// 1-based chase round.
    pub round: usize,
    /// Statement index (position in the engine's tgd list).
    pub stmt: usize,
    /// Trigger bindings enumerated (body matches examined).
    pub examined: u64,
    /// Triggers that passed their equality gates and fired.
    pub fired: u64,
    /// Fresh facts this statement derived (not yet in the instance nor in
    /// this round's fresh set).
    pub derived: u64,
    /// Head facts that were already present (in the instance or already
    /// derived this round) — deduplication hits.
    pub dedup_hits: u64,
    /// Labeled nulls interned while firing this statement.
    pub nulls_interned: u64,
    /// Candidate tuples iterated by the semi-naive join (0 for the naive
    /// engines, which do not track per-tuple work).
    pub touched: u64,
    /// Wall time spent matching and firing, in nanoseconds. Zero when the
    /// observer is disabled ([`ChaseObserver::ENABLED`] is `false`).
    pub elapsed_ns: u64,
}

/// Observer of a (sequential) chase run. Methods take `&mut self`; the
/// engine owns the observer exclusively for the duration of the chase.
pub trait ChaseObserver {
    /// `false` exactly for no-op sinks: engines consult this to skip
    /// preparing event data (notably clock reads) that no one will see.
    const ENABLED: bool = true;

    /// The chase is starting: program size and source instance size.
    fn chase_start(&mut self, statements: usize, source_facts: usize) {
        let _ = (statements, source_facts);
    }

    /// The engine verified the plan's dataflow certificate: `dead`
    /// statements will be skipped every round and `ground` relations are
    /// provably null-free. Emitted once, between
    /// [`ChaseObserver::chase_start`] and the first round; never emitted
    /// for plans without a certificate.
    fn dataflow_cert(&mut self, dead: usize, ground: usize) {
        let _ = (dead, ground);
    }

    /// A certified-dead statement was skipped without matching (one call
    /// per statement per round).
    fn statement_skipped(&mut self, round: usize, stmt: usize) {
        let _ = (round, stmt);
    }

    /// A round begins (rounds are 1-based).
    fn round_start(&mut self, round: usize) {
        let _ = round;
    }

    /// The semi-naive engines report the size of the round's delta
    /// frontier (tuples committed by the previous round; in round one,
    /// the whole source). The naive engines never emit this event.
    fn round_delta(&mut self, round: usize, frontier: u64) {
        let _ = (round, frontier);
    }

    /// The sharded delta engine finished one statement's match phase:
    /// `touched[s]` is the number of candidate tuples shard `s` iterated.
    /// One entry per shard — the spread across entries is the shard
    /// balance. Unsharded engines never emit this event.
    fn statement_shards(&mut self, round: usize, stmt: usize, touched: &[u64]) {
        let _ = (round, stmt, touched);
    }

    /// One statement finished its pass in the current round.
    fn statement(&mut self, sr: &StmtRound) {
        let _ = sr;
    }

    /// One schedule stage of the parallel chase finished its pass in the
    /// current round: `statements` statements were matched across
    /// `workers` threads in `elapsed_ns`. Stages are 0-based within a
    /// round; the sequential engine never emits this event.
    fn stage_end(
        &mut self,
        round: usize,
        stage: usize,
        statements: usize,
        workers: usize,
        elapsed_ns: u64,
    ) {
        let _ = (round, stage, statements, workers, elapsed_ns);
    }

    /// A round ended, committing `fresh` new facts in `elapsed_ns`.
    fn round_end(&mut self, round: usize, fresh: u64, elapsed_ns: u64) {
        let _ = (round, fresh, elapsed_ns);
    }

    /// The chase finished. `outcome` is `"fixpoint"`, `"budget-exhausted"`
    /// or `"refused"`; `derived` counts facts derived beyond the source
    /// (for `"budget-exhausted"`: including the uncommitted fresh facts of
    /// the cut-off round, i.e. how far the chase got).
    fn chase_end(&mut self, rounds: usize, derived: u64, outcome: &str) {
        let _ = (rounds, derived, outcome);
    }

    /// Final counters of the engine's fact store (inserts, dedup hits,
    /// tombstones, revivals, compactions) — reported once, alongside
    /// [`ChaseObserver::chase_end`]. Not reported when the engine refused
    /// to run (no store exists yet).
    fn store(&mut self, counters: &StoreCounters) {
        let _ = counters;
    }
}

/// Observer of the homomorphism/core engine. Methods take `&self` and the
/// trait requires `Sync`: block searches and retraction probes run on
/// scoped worker threads sharing one observer, so implementations count
/// with atomics.
pub trait HomObserver: Sync {
    /// `false` exactly for no-op sinks (see [`ChaseObserver::ENABLED`]).
    const ENABLED: bool = true;

    /// The search selected the next fact to match (one minimum-remaining-
    /// values decision).
    fn mrv_decision(&self) {}

    /// `n` posting-list probes against the target index.
    fn index_probes(&self, n: u64) {
        let _ = n;
    }

    /// A search branch was abandoned (all candidate tuples for the chosen
    /// fact failed).
    fn backtrack(&self) {}

    /// One f-block search finished.
    fn block_search(&self, facts: usize, solved: bool) {
        let _ = (facts, solved);
    }

    /// A core-engine retraction probe ran; `retracted` is whether an
    /// endomorphism avoiding the probed null was found.
    fn retraction_probe(&self, retracted: bool) {
        let _ = retracted;
    }

    /// `n` worker threads were dispatched for a parallel phase.
    fn threads_dispatched(&self, n: usize) {
        let _ = n;
    }
}

/// The disabled sink: every event is dropped, `ENABLED` is `false`, and
/// engines instantiated with it compile to their uninstrumented selves.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl ChaseObserver for NoopObserver {
    const ENABLED: bool = false;
}

impl HomObserver for NoopObserver {
    const ENABLED: bool = false;
}

impl<O: ChaseObserver> ChaseObserver for &mut O {
    const ENABLED: bool = O::ENABLED;

    fn chase_start(&mut self, statements: usize, source_facts: usize) {
        (**self).chase_start(statements, source_facts);
    }

    fn dataflow_cert(&mut self, dead: usize, ground: usize) {
        (**self).dataflow_cert(dead, ground);
    }

    fn statement_skipped(&mut self, round: usize, stmt: usize) {
        (**self).statement_skipped(round, stmt);
    }

    fn round_start(&mut self, round: usize) {
        (**self).round_start(round);
    }

    fn round_delta(&mut self, round: usize, frontier: u64) {
        (**self).round_delta(round, frontier);
    }

    fn statement(&mut self, sr: &StmtRound) {
        (**self).statement(sr);
    }

    fn statement_shards(&mut self, round: usize, stmt: usize, touched: &[u64]) {
        (**self).statement_shards(round, stmt, touched);
    }

    fn stage_end(
        &mut self,
        round: usize,
        stage: usize,
        statements: usize,
        workers: usize,
        elapsed_ns: u64,
    ) {
        (**self).stage_end(round, stage, statements, workers, elapsed_ns);
    }

    fn round_end(&mut self, round: usize, fresh: u64, elapsed_ns: u64) {
        (**self).round_end(round, fresh, elapsed_ns);
    }

    fn chase_end(&mut self, rounds: usize, derived: u64, outcome: &str) {
        (**self).chase_end(rounds, derived, outcome);
    }

    fn store(&mut self, counters: &StoreCounters) {
        (**self).store(counters);
    }
}

impl<O: HomObserver> HomObserver for &O {
    const ENABLED: bool = O::ENABLED;

    fn mrv_decision(&self) {
        (**self).mrv_decision();
    }

    fn index_probes(&self, n: u64) {
        (**self).index_probes(n);
    }

    fn backtrack(&self) {
        (**self).backtrack();
    }

    fn block_search(&self, facts: usize, solved: bool) {
        (**self).block_search(facts, solved);
    }

    fn retraction_probe(&self, retracted: bool) {
        (**self).retraction_probe(retracted);
    }

    fn threads_dispatched(&self, n: usize) {
        (**self).threads_dispatched(n);
    }
}

/// Fan-out to two chase observers (e.g. a [`crate::Stats`] aggregate plus a
/// [`crate::JsonlTracer`]). Enabled iff either side is.
impl<A: ChaseObserver, B: ChaseObserver> ChaseObserver for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn chase_start(&mut self, statements: usize, source_facts: usize) {
        self.0.chase_start(statements, source_facts);
        self.1.chase_start(statements, source_facts);
    }

    fn dataflow_cert(&mut self, dead: usize, ground: usize) {
        self.0.dataflow_cert(dead, ground);
        self.1.dataflow_cert(dead, ground);
    }

    fn statement_skipped(&mut self, round: usize, stmt: usize) {
        self.0.statement_skipped(round, stmt);
        self.1.statement_skipped(round, stmt);
    }

    fn round_start(&mut self, round: usize) {
        self.0.round_start(round);
        self.1.round_start(round);
    }

    fn round_delta(&mut self, round: usize, frontier: u64) {
        self.0.round_delta(round, frontier);
        self.1.round_delta(round, frontier);
    }

    fn statement(&mut self, sr: &StmtRound) {
        self.0.statement(sr);
        self.1.statement(sr);
    }

    fn statement_shards(&mut self, round: usize, stmt: usize, touched: &[u64]) {
        self.0.statement_shards(round, stmt, touched);
        self.1.statement_shards(round, stmt, touched);
    }

    fn stage_end(
        &mut self,
        round: usize,
        stage: usize,
        statements: usize,
        workers: usize,
        elapsed_ns: u64,
    ) {
        self.0
            .stage_end(round, stage, statements, workers, elapsed_ns);
        self.1
            .stage_end(round, stage, statements, workers, elapsed_ns);
    }

    fn round_end(&mut self, round: usize, fresh: u64, elapsed_ns: u64) {
        self.0.round_end(round, fresh, elapsed_ns);
        self.1.round_end(round, fresh, elapsed_ns);
    }

    fn chase_end(&mut self, rounds: usize, derived: u64, outcome: &str) {
        self.0.chase_end(rounds, derived, outcome);
        self.1.chase_end(rounds, derived, outcome);
    }

    fn store(&mut self, counters: &StoreCounters) {
        self.0.store(counters);
        self.1.store(counters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled() {
        const { assert!(!<NoopObserver as ChaseObserver>::ENABLED) };
        const { assert!(!<NoopObserver as HomObserver>::ENABLED) };
        // And usable through a reference without flipping the const.
        const { assert!(!<&mut NoopObserver as ChaseObserver>::ENABLED) };
        const { assert!(!<&NoopObserver as HomObserver>::ENABLED) };
    }

    #[test]
    fn pair_is_enabled_when_either_side_is() {
        const { assert!(!<(NoopObserver, NoopObserver) as ChaseObserver>::ENABLED) };
        const { assert!(<(crate::ChaseStats, NoopObserver) as ChaseObserver>::ENABLED) };
    }
}
