//! Counter aggregates: per-statement chase stats, atomic hom/core search
//! stats, and the combined [`Stats`] bundle with JSON rendering.

use crate::observer::{ChaseObserver, HomObserver, StmtRound};
use ndl_core::store::StoreCounters;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Whole-run totals for one chase statement (summed over all rounds).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct StmtStats {
    /// Statement index (position in the engine's tgd list).
    pub stmt: usize,
    /// Trigger bindings enumerated.
    pub examined: u64,
    /// Triggers that passed their equality gates.
    pub fired: u64,
    /// Fresh facts derived.
    pub derived: u64,
    /// Head facts that were already present.
    pub dedup_hits: u64,
    /// Labeled nulls interned while firing this statement.
    pub nulls_interned: u64,
    /// Candidate tuples iterated by the semi-naive join (0 under the
    /// naive engines).
    pub touched: u64,
    /// Largest shard count any match phase of this statement was split
    /// into (0 when never sharded).
    pub max_shards: usize,
    /// Candidate tuples iterated by the busiest single shard across the
    /// run — compare against `touched / max_shards` for shard balance.
    pub shard_touched_max: u64,
    /// Wall time matching and firing, in nanoseconds (0 when untimed).
    pub elapsed_ns: u64,
}

/// Whole-run totals for one parallel-chase schedule stage (summed over all
/// rounds). The sequential engine emits no stage events, so `stages` stays
/// empty for it.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct StageStats {
    /// Stage index within the schedule (0-based).
    pub stage: usize,
    /// Statements matched in this stage.
    pub statements: usize,
    /// Rounds in which the stage ran.
    pub rounds: usize,
    /// Maximum worker threads dispatched for the stage in any round.
    pub max_workers: usize,
    /// Wall time across all rounds, in nanoseconds (0 when untimed).
    pub elapsed_ns: u64,
}

/// Aggregated counters of one chase run ([`ChaseObserver`] implementation).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ChaseStats {
    /// `"fixpoint"`, `"budget-exhausted"`, `"refused"`, or `""` while the
    /// chase is still running.
    pub outcome: String,
    /// Rounds run (the final, empty round included on a fixpoint).
    pub rounds: usize,
    /// Facts in the source instance.
    pub source_facts: u64,
    /// Facts derived beyond the source (on `"budget-exhausted"`: including
    /// the uncommitted fresh facts of the cut-off round).
    pub derived: u64,
    /// Total trigger bindings enumerated.
    pub triggers_examined: u64,
    /// Total triggers fired.
    pub triggers_fired: u64,
    /// Total dedup hits.
    pub dedup_hits: u64,
    /// Total labeled nulls interned.
    pub nulls_interned: u64,
    /// Statements the plan's verified dataflow certificate declared dead
    /// (0 for plans without a certificate).
    pub dead_statements: u64,
    /// Relations the certificate declared provably null-free.
    pub ground_relations: u64,
    /// Statement firings skipped because the statement was certified dead
    /// (one per dead statement per round).
    pub skipped_firings: u64,
    /// Final counters of the engine's fact store (all zero when the
    /// engine refused to run). Zeroed by [`ChaseStats::redact_timings`]:
    /// like timings, they describe the storage layer rather than the
    /// chase semantics, so golden outputs must not depend on them.
    pub store: StoreCounters,
    /// Total wall time across rounds, in nanoseconds (0 when untimed).
    pub elapsed_ns: u64,
    /// Fresh facts committed per round, in round order.
    pub round_fresh: Vec<u64>,
    /// Delta-frontier size per round, in round order (empty under the
    /// naive engines, which never emit the event).
    pub round_delta: Vec<u64>,
    /// Per-statement totals, indexed by statement.
    pub statements: Vec<StmtStats>,
    /// Per-stage totals of the parallel engine, indexed by stage (empty
    /// for a sequential chase).
    pub stages: Vec<StageStats>,
}

impl ChaseStats {
    /// An empty aggregate.
    pub fn new() -> ChaseStats {
        ChaseStats::default()
    }

    /// Zeroes every `elapsed_ns` field and the store counters — used by
    /// golden tests and the `--no-timings` CLI flag, so stats output is
    /// bit-deterministic and independent of the storage layer.
    pub fn redact_timings(&mut self) {
        self.elapsed_ns = 0;
        self.store = StoreCounters::default();
        for s in &mut self.statements {
            s.elapsed_ns = 0;
        }
        for s in &mut self.stages {
            s.elapsed_ns = 0;
        }
    }

    /// Pretty JSON rendering (field order is declaration order).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("stats serialize infallibly")
    }

    fn stmt_mut(&mut self, stmt: usize) -> &mut StmtStats {
        if self.statements.len() <= stmt {
            self.statements.resize_with(stmt + 1, StmtStats::default);
            for (i, s) in self.statements.iter_mut().enumerate() {
                s.stmt = i;
            }
        }
        &mut self.statements[stmt]
    }
}

impl ChaseObserver for ChaseStats {
    fn chase_start(&mut self, statements: usize, source_facts: usize) {
        self.stmt_mut(statements.saturating_sub(1));
        self.statements.truncate(statements);
        self.source_facts = source_facts as u64;
    }

    fn dataflow_cert(&mut self, dead: usize, ground: usize) {
        self.dead_statements = dead as u64;
        self.ground_relations = ground as u64;
    }

    fn statement_skipped(&mut self, _round: usize, _stmt: usize) {
        self.skipped_firings += 1;
    }

    fn statement(&mut self, sr: &StmtRound) {
        self.triggers_examined += sr.examined;
        self.triggers_fired += sr.fired;
        self.dedup_hits += sr.dedup_hits;
        self.nulls_interned += sr.nulls_interned;
        let s = self.stmt_mut(sr.stmt);
        s.examined += sr.examined;
        s.fired += sr.fired;
        s.derived += sr.derived;
        s.dedup_hits += sr.dedup_hits;
        s.nulls_interned += sr.nulls_interned;
        s.touched += sr.touched;
        s.elapsed_ns += sr.elapsed_ns;
    }

    fn round_delta(&mut self, _round: usize, frontier: u64) {
        self.round_delta.push(frontier);
    }

    fn statement_shards(&mut self, _round: usize, stmt: usize, touched: &[u64]) {
        let s = self.stmt_mut(stmt);
        s.max_shards = s.max_shards.max(touched.len());
        s.shard_touched_max = s
            .shard_touched_max
            .max(touched.iter().copied().max().unwrap_or(0));
    }

    fn stage_end(
        &mut self,
        _round: usize,
        stage: usize,
        statements: usize,
        workers: usize,
        elapsed_ns: u64,
    ) {
        if self.stages.len() <= stage {
            self.stages.resize_with(stage + 1, StageStats::default);
            for (i, s) in self.stages.iter_mut().enumerate() {
                s.stage = i;
            }
        }
        let s = &mut self.stages[stage];
        s.statements = statements;
        s.rounds += 1;
        s.max_workers = s.max_workers.max(workers);
        s.elapsed_ns += elapsed_ns;
    }

    fn round_end(&mut self, _round: usize, fresh: u64, elapsed_ns: u64) {
        self.round_fresh.push(fresh);
        self.elapsed_ns += elapsed_ns;
    }

    fn chase_end(&mut self, rounds: usize, derived: u64, outcome: &str) {
        self.rounds = rounds;
        self.derived = derived;
        self.outcome = outcome.to_string();
    }

    fn store(&mut self, counters: &StoreCounters) {
        self.store = *counters;
    }
}

/// Atomic counters of the homomorphism/core engine ([`HomObserver`]
/// implementation) — shared freely across scoped worker threads.
#[derive(Debug, Default)]
pub struct HomStats {
    /// Minimum-remaining-values fact selections.
    pub mrv_decisions: AtomicU64,
    /// Posting-list probes against target indexes.
    pub index_probes: AtomicU64,
    /// Abandoned search branches.
    pub backtracks: AtomicU64,
    /// f-block searches run.
    pub block_searches: AtomicU64,
    /// f-block searches that found a mapping.
    pub blocks_solved: AtomicU64,
    /// Core-engine retraction probes run.
    pub retraction_probes: AtomicU64,
    /// Retraction probes that found a retraction.
    pub retractions: AtomicU64,
    /// Worker threads dispatched across all parallel phases.
    pub threads_dispatched: AtomicU64,
}

/// A plain-value copy of [`HomStats`], for comparison and JSON rendering.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct HomStatsSnapshot {
    /// Minimum-remaining-values fact selections.
    pub mrv_decisions: u64,
    /// Posting-list probes against target indexes.
    pub index_probes: u64,
    /// Abandoned search branches.
    pub backtracks: u64,
    /// f-block searches run.
    pub block_searches: u64,
    /// f-block searches that found a mapping.
    pub blocks_solved: u64,
    /// Core-engine retraction probes run.
    pub retraction_probes: u64,
    /// Retraction probes that found a retraction.
    pub retractions: u64,
    /// Worker threads dispatched across all parallel phases.
    pub threads_dispatched: u64,
}

impl HomStats {
    /// An empty aggregate.
    pub fn new() -> HomStats {
        HomStats::default()
    }

    /// A consistent plain-value copy.
    pub fn snapshot(&self) -> HomStatsSnapshot {
        HomStatsSnapshot {
            mrv_decisions: self.mrv_decisions.load(Ordering::Relaxed),
            index_probes: self.index_probes.load(Ordering::Relaxed),
            backtracks: self.backtracks.load(Ordering::Relaxed),
            block_searches: self.block_searches.load(Ordering::Relaxed),
            blocks_solved: self.blocks_solved.load(Ordering::Relaxed),
            retraction_probes: self.retraction_probes.load(Ordering::Relaxed),
            retractions: self.retractions.load(Ordering::Relaxed),
            threads_dispatched: self.threads_dispatched.load(Ordering::Relaxed),
        }
    }

    /// Pretty JSON rendering of a snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).expect("stats serialize infallibly")
    }
}

impl HomObserver for HomStats {
    fn mrv_decision(&self) {
        self.mrv_decisions.fetch_add(1, Ordering::Relaxed);
    }

    fn index_probes(&self, n: u64) {
        self.index_probes.fetch_add(n, Ordering::Relaxed);
    }

    fn backtrack(&self) {
        self.backtracks.fetch_add(1, Ordering::Relaxed);
    }

    fn block_search(&self, _facts: usize, solved: bool) {
        self.block_searches.fetch_add(1, Ordering::Relaxed);
        if solved {
            self.blocks_solved.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn retraction_probe(&self, retracted: bool) {
        self.retraction_probes.fetch_add(1, Ordering::Relaxed);
        if retracted {
            self.retractions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn threads_dispatched(&self, n: usize) {
        self.threads_dispatched
            .fetch_add(n as u64, Ordering::Relaxed);
    }
}

/// The combined aggregate: chase counters plus hom/core search counters.
/// Implements both observer traits, so one `Stats` can watch a whole
/// reasoning pipeline (chase → core → implication checks).
#[derive(Debug, Default)]
pub struct Stats {
    /// The chase side.
    pub chase: ChaseStats,
    /// The homomorphism/core side.
    pub hom: HomStats,
}

impl Stats {
    /// An empty aggregate.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Pretty JSON rendering: `{"chase": ..., "hom": ...}`.
    pub fn to_json(&self) -> String {
        let chase = serde_json::to_value(&self.chase).expect("serializes");
        let hom = serde_json::to_value(&self.hom.snapshot()).expect("serializes");
        serde_json::to_string_pretty(&serde::Value::Object(vec![
            ("chase".to_string(), chase),
            ("hom".to_string(), hom),
        ]))
        .expect("stats serialize infallibly")
    }
}

impl ChaseObserver for Stats {
    fn chase_start(&mut self, statements: usize, source_facts: usize) {
        self.chase.chase_start(statements, source_facts);
    }

    fn dataflow_cert(&mut self, dead: usize, ground: usize) {
        self.chase.dataflow_cert(dead, ground);
    }

    fn statement_skipped(&mut self, round: usize, stmt: usize) {
        self.chase.statement_skipped(round, stmt);
    }

    fn round_start(&mut self, round: usize) {
        self.chase.round_start(round);
    }

    fn round_delta(&mut self, round: usize, frontier: u64) {
        self.chase.round_delta(round, frontier);
    }

    fn statement(&mut self, sr: &StmtRound) {
        self.chase.statement(sr);
    }

    fn statement_shards(&mut self, round: usize, stmt: usize, touched: &[u64]) {
        self.chase.statement_shards(round, stmt, touched);
    }

    fn stage_end(
        &mut self,
        round: usize,
        stage: usize,
        statements: usize,
        workers: usize,
        elapsed_ns: u64,
    ) {
        self.chase
            .stage_end(round, stage, statements, workers, elapsed_ns);
    }

    fn round_end(&mut self, round: usize, fresh: u64, elapsed_ns: u64) {
        self.chase.round_end(round, fresh, elapsed_ns);
    }

    fn chase_end(&mut self, rounds: usize, derived: u64, outcome: &str) {
        self.chase.chase_end(rounds, derived, outcome);
    }

    fn store(&mut self, counters: &StoreCounters) {
        self.chase.store(counters);
    }
}

impl HomObserver for Stats {
    fn mrv_decision(&self) {
        self.hom.mrv_decision();
    }

    fn index_probes(&self, n: u64) {
        self.hom.index_probes(n);
    }

    fn backtrack(&self) {
        self.hom.backtrack();
    }

    fn block_search(&self, facts: usize, solved: bool) {
        self.hom.block_search(facts, solved);
    }

    fn retraction_probe(&self, retracted: bool) {
        self.hom.retraction_probe(retracted);
    }

    fn threads_dispatched(&self, n: usize) {
        self.hom.threads_dispatched(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chase_stats_aggregate_per_statement_and_totals() {
        let mut st = ChaseStats::new();
        st.chase_start(2, 3);
        st.round_start(1);
        st.statement(&StmtRound {
            round: 1,
            stmt: 0,
            examined: 5,
            fired: 4,
            derived: 2,
            dedup_hits: 2,
            nulls_interned: 1,
            touched: 12,
            elapsed_ns: 10,
        });
        st.statement(&StmtRound {
            round: 1,
            stmt: 1,
            examined: 3,
            fired: 3,
            derived: 1,
            dedup_hits: 0,
            nulls_interned: 0,
            touched: 0,
            elapsed_ns: 7,
        });
        st.round_delta(1, 3);
        st.statement_shards(1, 0, &[8, 4]);
        st.round_end(1, 3, 20);
        st.store(&StoreCounters {
            inserts: 6,
            dedup_hits: 2,
            ..StoreCounters::default()
        });
        st.chase_end(2, 3, "fixpoint");
        assert_eq!(st.triggers_examined, 8);
        assert_eq!(st.triggers_fired, 7);
        assert_eq!(st.derived, 3);
        assert_eq!(st.statements.len(), 2);
        assert_eq!(st.statements[0].derived, 2);
        assert_eq!(st.statements[1].stmt, 1);
        assert_eq!(st.round_fresh, vec![3]);
        assert_eq!(st.round_delta, vec![3]);
        assert_eq!(st.statements[0].touched, 12);
        assert_eq!(st.statements[0].max_shards, 2);
        assert_eq!(st.statements[0].shard_touched_max, 8);
        assert_eq!(st.statements[1].max_shards, 0);
        assert_eq!(st.elapsed_ns, 20);
        assert_eq!(st.outcome, "fixpoint");
        assert_eq!(st.store.inserts, 6);
        // Redaction zeroes all timing fields and the store counters,
        // nothing else.
        let mut redacted = st.clone();
        redacted.redact_timings();
        assert_eq!(redacted.elapsed_ns, 0);
        assert!(redacted.statements.iter().all(|s| s.elapsed_ns == 0));
        assert_eq!(redacted.store, StoreCounters::default());
        assert_eq!(redacted.triggers_examined, st.triggers_examined);
        // JSON is stable and contains the headline counters.
        let json = redacted.to_json();
        assert!(json.contains("\"triggers_examined\": 8"));
        assert!(json.contains("\"outcome\": \"fixpoint\""));
    }

    #[test]
    fn dataflow_cert_and_skips_are_counted() {
        let mut st = ChaseStats::new();
        st.chase_start(3, 1);
        st.dataflow_cert(2, 4);
        st.statement_skipped(1, 0);
        st.statement_skipped(1, 2);
        st.statement_skipped(2, 0);
        assert_eq!(st.dead_statements, 2);
        assert_eq!(st.ground_relations, 4);
        assert_eq!(st.skipped_firings, 3);
        let json = st.to_json();
        assert!(json.contains("\"dead_statements\": 2"));
        assert!(json.contains("\"skipped_firings\": 3"));
    }

    #[test]
    fn stage_stats_aggregate_across_rounds() {
        let mut st = ChaseStats::new();
        st.stage_end(1, 0, 2, 2, 10);
        st.stage_end(1, 1, 1, 1, 5);
        st.stage_end(2, 0, 2, 3, 7);
        assert_eq!(st.stages.len(), 2);
        assert_eq!(st.stages[0].stage, 0);
        assert_eq!(st.stages[0].statements, 2);
        assert_eq!(st.stages[0].rounds, 2);
        assert_eq!(st.stages[0].max_workers, 3);
        assert_eq!(st.stages[0].elapsed_ns, 17);
        assert_eq!(st.stages[1].rounds, 1);
        st.redact_timings();
        assert!(st.stages.iter().all(|s| s.elapsed_ns == 0));
        assert!(st.to_json().contains("\"stages\""));
    }

    #[test]
    fn hom_stats_count_atomically() {
        let st = HomStats::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        st.mrv_decision();
                        st.index_probes(2);
                        st.backtrack();
                    }
                    st.block_search(5, true);
                    st.retraction_probe(false);
                    st.threads_dispatched(3);
                });
            }
        });
        let snap = st.snapshot();
        assert_eq!(snap.mrv_decisions, 400);
        assert_eq!(snap.index_probes, 800);
        assert_eq!(snap.backtracks, 400);
        assert_eq!(snap.block_searches, 4);
        assert_eq!(snap.blocks_solved, 4);
        assert_eq!(snap.retraction_probes, 4);
        assert_eq!(snap.retractions, 0);
        assert_eq!(snap.threads_dispatched, 12);
    }

    #[test]
    fn combined_stats_route_both_traits() {
        let mut st = Stats::new();
        ChaseObserver::chase_start(&mut st, 1, 1);
        HomObserver::mrv_decision(&st);
        assert_eq!(st.chase.statements.len(), 1);
        assert_eq!(st.hom.snapshot().mrv_decisions, 1);
        let json = st.to_json();
        assert!(json.contains("\"chase\""));
        assert!(json.contains("\"hom\""));
    }
}
