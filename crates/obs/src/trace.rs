//! JSONL event tracing: one JSON object per observer event, appended to any
//! [`std::io::Write`] sink (`ndl chase --trace <out.jsonl>` writes a file).
//!
//! Events are coarse — chase rounds and per-statement aggregates — so a
//! trace stays proportional to `rounds × statements`, not to the number of
//! triggers examined. The schema is documented in `docs/observability.md`.

use crate::observer::{ChaseObserver, StmtRound};
use ndl_core::store::StoreCounters;
use std::io::Write;

/// A [`ChaseObserver`] appending one JSON line per event to `sink`.
///
/// I/O errors are counted, not propagated: observers must not change
/// engine behavior, so a full disk degrades the trace, never the chase.
#[derive(Debug)]
pub struct JsonlTracer<W: Write> {
    sink: W,
    events: u64,
    io_errors: u64,
}

impl<W: Write> JsonlTracer<W> {
    /// Wraps a sink.
    pub fn new(sink: W) -> JsonlTracer<W> {
        JsonlTracer {
            sink,
            events: 0,
            io_errors: 0,
        }
    }

    /// Events successfully written.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Write errors swallowed (0 on a healthy sink).
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// Flushes and returns the sink.
    pub fn into_inner(mut self) -> W {
        let _ = self.sink.flush();
        self.sink
    }

    fn emit(&mut self, line: &str) {
        match writeln!(self.sink, "{line}") {
            Ok(()) => self.events += 1,
            Err(_) => self.io_errors += 1,
        }
    }
}

impl<W: Write> ChaseObserver for JsonlTracer<W> {
    fn chase_start(&mut self, statements: usize, source_facts: usize) {
        self.emit(&format!(
            "{{\"event\":\"chase_start\",\"statements\":{statements},\"source_facts\":{source_facts}}}"
        ));
    }

    fn dataflow_cert(&mut self, dead: usize, ground: usize) {
        self.emit(&format!(
            "{{\"event\":\"dataflow_cert\",\"dead\":{dead},\"ground\":{ground}}}"
        ));
    }

    fn statement_skipped(&mut self, round: usize, stmt: usize) {
        self.emit(&format!(
            "{{\"event\":\"statement_skipped\",\"round\":{round},\"stmt\":{stmt}}}"
        ));
    }

    fn round_start(&mut self, round: usize) {
        self.emit(&format!("{{\"event\":\"round_start\",\"round\":{round}}}"));
    }

    fn round_delta(&mut self, round: usize, frontier: u64) {
        self.emit(&format!(
            "{{\"event\":\"round_delta\",\"round\":{round},\"frontier\":{frontier}}}"
        ));
    }

    fn statement(&mut self, sr: &StmtRound) {
        self.emit(&format!(
            "{{\"event\":\"statement\",\"round\":{},\"stmt\":{},\"examined\":{},\"fired\":{},\"derived\":{},\"dedup_hits\":{},\"nulls_interned\":{},\"touched\":{},\"elapsed_ns\":{}}}",
            sr.round, sr.stmt, sr.examined, sr.fired, sr.derived, sr.dedup_hits, sr.nulls_interned, sr.touched, sr.elapsed_ns
        ));
    }

    fn statement_shards(&mut self, round: usize, stmt: usize, touched: &[u64]) {
        let counts: Vec<String> = touched.iter().map(u64::to_string).collect();
        self.emit(&format!(
            "{{\"event\":\"statement_shards\",\"round\":{round},\"stmt\":{stmt},\"shards\":{},\"touched\":[{}]}}",
            touched.len(),
            counts.join(",")
        ));
    }

    fn stage_end(
        &mut self,
        round: usize,
        stage: usize,
        statements: usize,
        workers: usize,
        elapsed_ns: u64,
    ) {
        self.emit(&format!(
            "{{\"event\":\"stage_end\",\"round\":{round},\"stage\":{stage},\"statements\":{statements},\"workers\":{workers},\"elapsed_ns\":{elapsed_ns}}}"
        ));
    }

    fn round_end(&mut self, round: usize, fresh: u64, elapsed_ns: u64) {
        self.emit(&format!(
            "{{\"event\":\"round_end\",\"round\":{round},\"fresh\":{fresh},\"elapsed_ns\":{elapsed_ns}}}"
        ));
    }

    fn chase_end(&mut self, rounds: usize, derived: u64, outcome: &str) {
        // `outcome` is one of the engine's fixed labels — no escaping needed.
        self.emit(&format!(
            "{{\"event\":\"chase_end\",\"rounds\":{rounds},\"derived\":{derived},\"outcome\":\"{outcome}\"}}"
        ));
    }

    fn store(&mut self, c: &StoreCounters) {
        self.emit(&format!(
            "{{\"event\":\"store\",\"inserts\":{},\"dedup_hits\":{},\"tombstones\":{},\"revivals\":{},\"compactions\":{},\"rehashes\":{},\"regrows\":{}}}",
            c.inserts, c.dedup_hits, c.tombstones, c.revivals, c.compactions, c.rehashes, c.regrows
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_one_json_object_per_event() {
        let mut t = JsonlTracer::new(Vec::new());
        t.chase_start(2, 3);
        t.dataflow_cert(1, 2);
        t.statement_skipped(1, 1);
        t.round_start(1);
        t.round_delta(1, 3);
        t.statement(&StmtRound {
            round: 1,
            stmt: 0,
            examined: 4,
            fired: 4,
            derived: 2,
            dedup_hits: 0,
            nulls_interned: 1,
            touched: 9,
            elapsed_ns: 0,
        });
        t.statement_shards(1, 0, &[5, 4]);
        t.round_end(1, 2, 0);
        t.chase_end(2, 2, "fixpoint");
        assert_eq!(t.events(), 9);
        assert_eq!(t.io_errors(), 0);
        let text = String::from_utf8(t.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 9);
        // Every line parses as a JSON object with an "event" key.
        for line in &lines {
            let v: serde::Value = serde_json::from_str(line).unwrap();
            let obj = v.as_object().expect("object");
            assert!(obj.iter().any(|(k, _)| k == "event"), "{line}");
        }
        assert!(lines[1].contains("\"dead\":1"));
        assert!(lines[2].contains("\"statement_skipped\""));
        assert!(lines[4].contains("\"frontier\":3"));
        assert!(lines[5].contains("\"examined\":4"));
        assert!(lines[5].contains("\"touched\":9"));
        assert!(lines[6].contains("\"touched\":[5,4]"));
        assert!(lines[8].contains("\"outcome\":\"fixpoint\""));
    }

    #[test]
    fn io_errors_are_swallowed() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut t = JsonlTracer::new(Broken);
        t.round_start(1);
        assert_eq!(t.events(), 0);
        assert_eq!(t.io_errors(), 1);
    }
}
