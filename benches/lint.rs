//! Benchmarks the `ndl-analyze` lint pipeline end to end — statement
//! splitting, parsing, schema validation, the NDL01x rules and the
//! critical-instance chase — over generated dependency programs of
//! increasing size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nested_deps::analyze::{lint_source, to_json, LintOptions};
use nested_deps::prelude::*;

/// Builds a program of `n` generated nested tgds (each over its own tagged
/// relations, so the shared schema stays consistent) as lint input text.
fn program(n: usize) -> String {
    let mut syms = SymbolTable::new();
    let mut src = String::new();
    for i in 0..n {
        let opts = TgdGenOptions {
            max_depth: 3,
            max_children: 2,
            existential_prob: 0.7,
            seed: i as u64,
        };
        let t = random_nested_tgd(&mut syms, &format!("g{i}"), &opts);
        src.push_str(&t.display(&syms));
        src.push('\n');
    }
    src
}

fn bench_lint(c: &mut Criterion) {
    let mut group = c.benchmark_group("lint");
    for &n in &[4usize, 16, 64] {
        let src = program(n);
        group.bench_with_input(BenchmarkId::new("lint_source", n), &src, |b, src| {
            b.iter(|| {
                let mut syms = SymbolTable::new();
                black_box(lint_source(
                    &mut syms,
                    black_box(src),
                    &LintOptions::default(),
                ))
            })
        });
    }
    let src = program(16);
    group.bench_function("lint_source+json/16", |b| {
        b.iter(|| {
            let mut syms = SymbolTable::new();
            let diags = lint_source(&mut syms, black_box(&src), &LintOptions::default());
            black_box(to_json(&diags))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lint);
criterion_main!(benches);
