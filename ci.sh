#!/usr/bin/env bash
# CI gate: formatting, lints, and the tier-1 verify from ROADMAP.md.
# Everything runs offline — third-party deps resolve to the shims in
# compat/ (see Cargo.toml [workspace.dependencies]).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1 verify: cargo build --release && cargo test -q"
cargo build --release --offline
cargo test -q --offline

echo "==> engine tests: cargo test -q -p ndl-hom"
cargo test -q -p ndl-hom --offline

echo "==> benches compile: cargo bench --no-run"
cargo bench --no-run --offline

echo "CI green."
