#!/usr/bin/env bash
# CI gate: formatting, lints, and the tier-1 verify from ROADMAP.md.
# Everything runs offline — third-party deps resolve to the shims in
# compat/ (see Cargo.toml [workspace.dependencies]).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1 verify: cargo build --release && cargo test -q"
cargo build --release --offline
cargo test -q --offline

echo "==> analyze goldens: ndl analyze over examples/programs/"
for f in examples/programs/*.ndl; do
  name="$(basename "$f" .ndl)"
  ./target/release/ndl analyze --json "$f" | diff -u "examples/programs/golden/$name.json" -
done
./target/release/ndl analyze --dot examples/programs/running.ndl \
  | diff -u examples/programs/golden/running.dot -

echo "==> chase goldens: ndl chase --stats over terminating example programs"
for name in running pipeline; do
  ./target/release/ndl chase --stats --no-timings --no-delta "examples/programs/$name.ndl" \
    | diff -u "examples/programs/golden/$name.chase.json" -
done

echo "==> delta chase golden: semi-naive stats (frontiers, touched counters)"
./target/release/ndl chase --stats --no-timings --delta examples/programs/running.ndl \
  | diff -u examples/programs/golden/running.delta.json -

echo "==> schedule goldens: ndl analyze --schedule over examples/programs/"
for f in examples/programs/*.ndl; do
  name="$(basename "$f" .ndl)"
  ./target/release/ndl analyze --schedule --json "$f" \
    | diff -u "examples/programs/golden/$name.schedule.json" -
done

echo "==> dataflow goldens: ndl analyze --dataflow over examples/programs/"
for f in examples/programs/*.ndl; do
  name="$(basename "$f" .ndl)"
  ./target/release/ndl analyze --dataflow --json "$f" \
    | diff -u "examples/programs/golden/$name.dataflow.json" -
done

echo "==> chase engine parity: naive / delta / delta-parallel are bit-identical"
for name in running pipeline; do
  seq_out="$(./target/release/ndl chase --no-delta "examples/programs/$name.ndl")"
  diff <(echo "$seq_out") \
       <(./target/release/ndl chase --delta "examples/programs/$name.ndl")
  diff <(echo "$seq_out") \
       <(NDL_CHASE_THREADS=3 NDL_CHASE_SEQUENTIAL_CUTOFF=1 NDL_CHASE_SHARDS=4 \
         ./target/release/ndl chase --delta --parallel "examples/programs/$name.ndl")
  diff <(echo "$seq_out") \
       <(NDL_CHASE_THREADS=3 NDL_CHASE_SEQUENTIAL_CUTOFF=1 \
         ./target/release/ndl chase --no-delta --parallel "examples/programs/$name.ndl")
done

echo "==> dataflow cert parity: pruned (certified) and unpruned chases are bit-identical"
for name in running pipeline; do
  f="examples/programs/$name.ndl"
  uncert_out="$(./target/release/ndl chase --no-cert "$f")"
  diff <(echo "$uncert_out") <(./target/release/ndl chase "$f")
  diff <(echo "$uncert_out") \
       <(NDL_CHASE_THREADS=3 NDL_CHASE_SEQUENTIAL_CUTOFF=1 NDL_CHASE_SHARDS=4 \
         ./target/release/ndl chase --parallel "$f")
done
# The dead-code fixture is where the certificate actually prunes
# (two dead statements): certified and uncertified runs must agree.
uncert_out="$(./target/release/ndl chase --no-cert tests/lints/dead.ndl)"
diff <(echo "$uncert_out") <(./target/release/ndl chase tests/lints/dead.ndl)
diff <(echo "$uncert_out") <(./target/release/ndl chase --no-delta tests/lints/dead.ndl)

echo "==> engine tests: cargo test -q -p ndl-hom"
cargo test -q -p ndl-hom --offline

echo "==> benches compile: cargo bench --no-run"
cargo bench --no-run --offline

echo "==> bench_chase builds (record regeneration stays opt-in)"
cargo build --release --offline -p ndl-bench --bin bench_chase

echo "==> bench_schedule builds (record regeneration stays opt-in)"
cargo build --release --offline -p ndl-bench --bin bench_schedule

echo "==> bench_store builds (record regeneration stays opt-in)"
cargo build --release --offline -p ndl-bench --bin bench_store

echo "==> bench_delta builds (record regeneration stays opt-in)"
cargo build --release --offline -p ndl-bench --bin bench_delta

echo "==> bench_dataflow builds (record regeneration stays opt-in)"
cargo build --release --offline -p ndl-bench --bin bench_dataflow

echo "==> cargo doc --no-deps (rustdoc warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

echo "==> miri (ndl-core), when the toolchain component is installed"
if cargo miri --version >/dev/null 2>&1; then
  cargo miri test -q -p ndl-core --offline
else
  echo "    cargo-miri not installed; skipping"
fi

echo "CI green."
