//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements `StdRng::seed_from_u64`, `Rng::gen_range` over half-open and
//! inclusive integer ranges, and `Rng::gen_bool` — everything the workspace
//! generators use. The generator is xoshiro256++ seeded via SplitMix64, so
//! streams are deterministic per seed (though not bit-identical to the real
//! rand crate's StdRng).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (API subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        // 53 high bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly (subset of rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo + (reject_sample(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i32, i64);

/// Uniform draw in `[0, span)` via rejection sampling (no modulo bias).
fn reject_sample<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let raw = rng.next_u64();
        if raw < zone {
            return raw % span;
        }
    }
}

/// The standard generator: xoshiro256++ seeded through SplitMix64.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The `rand::rngs` module of the real crate.
pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1i64..=2);
            assert!((1..=2).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
