//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! Implements `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId` and `black_box`.
//! Timing is a simple wall-clock loop (warm-up plus timed batches) printing
//! mean ns/iter — enough to compare runs locally; swap the real criterion
//! back in for statistically rigorous measurements.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// (total duration, iterations) of the timed run, for reporting.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, running warm-up iterations then timed batches.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: run a few iterations untimed.
        for _ in 0..3 {
            black_box(routine());
        }
        let budget = Duration::from_millis(40);
        let max_iters = self.sample_size.max(1) as u64;
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < max_iters {
            black_box(routine());
            iters += 1;
            if start.elapsed() > budget {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark iteration cap.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs `routine` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, |b| {
            routine(b)
        });
        self
    }

    /// Runs `routine` with a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, |b| {
            routine(b, input)
        });
        self
    }

    /// Ends the group (report flushing is immediate here, so this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Parses CLI arguments (accepted and ignored by this stand-in).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), 100, |b| routine(b));
        self
    }

    /// Criterion's finalizer; prints nothing extra here.
    pub fn final_summary(&mut self) {}
}

fn run_one(label: &str, sample_size: usize, mut routine: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        result: None,
    };
    routine(&mut b);
    match b.result {
        Some((elapsed, iters)) if iters > 0 => {
            let per_iter = elapsed.as_nanos() / iters as u128;
            println!("bench {label:<48} {per_iter:>12} ns/iter  (n={iters})");
        }
        _ => println!("bench {label:<48} no measurement (Bencher::iter not called)"),
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_benches_run() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(5);
            g.bench_function("noop", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
                b.iter(|| black_box(x) * 2)
            });
            g.finish();
        }
        assert!(ran > 0);
    }
}
