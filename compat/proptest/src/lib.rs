//! Offline stand-in for the `proptest` crate.
//!
//! Supports the `proptest! { #![proptest_config(..)] #[test] fn name(arg in
//! range, ..) { .. } }` macro form used by the workspace's property tests.
//! Strategies are integer ranges; each test runs `cases` deterministic
//! iterations with range samples drawn from a per-case seeded generator, so
//! failures are reproducible (the panic message names the failing case).
//!
//! Unlike real proptest there is no shrinking — the deterministic seeds make
//! failing cases replayable, which is what the test suite relies on.

pub use rand::{Rng, RngCore, SeedableRng};

use std::ops::Range;

/// Per-test configuration (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not produce a verdict (discard via `return Ok(())`
/// never constructs one; assertion failures panic instead).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

/// The generator handed to strategies; one fresh stream per case.
#[derive(Clone, Debug)]
pub struct TestRng(rand::StdRng);

impl TestRng {
    /// A deterministic generator for case number `case`.
    pub fn for_case(case: u64) -> TestRng {
        TestRng(rand::StdRng::seed_from_u64(
            0x9e37_79b9_7f4a_7c15 ^ case.wrapping_mul(0xff51_afd7_ed55_8ccd),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Strategies: anything that can produce a value from the test generator.
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// The macro-facing prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Asserts a condition inside a property (panics with case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a test running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases as u64 {
                let mut __rng = $crate::TestRng::for_case(__case);
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)*
                // Like real proptest, the body runs in a closure returning
                // `Result<(), TestCaseError>` so `return Ok(())` discards.
                let __run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                if let Err(__panic) = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(__run),
                ) {
                    eprintln!(
                        "proptest case {__case}/{} failed for {}",
                        __cfg.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respected(a in 3u64..10, b in 0usize..4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b < 4);
        }

        #[test]
        fn arithmetic_holds(x in 0i64..100, y in 0i64..100) {
            prop_assert_eq!(x + y, y + x);
            prop_assert_ne!(x - 1, x);
        }
    }
}
