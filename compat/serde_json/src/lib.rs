//! Offline stand-in for the `serde_json` crate.
//!
//! Provides `to_string`, `to_string_pretty`, `to_value`, `from_str` and
//! `from_value` over the serde shim's [`Value`] tree, with a complete JSON
//! text parser and printer (string escapes, `\uXXXX`, nested containers).

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serialization/deserialization error (re-exported from the serde shim).
pub type Error = serde::Error;

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts `value` into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = JsonParser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---------- printer ----------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------- parser ----------

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| Error::msg(format!("invalid number at byte {start}")))
    }

    fn string(&mut self) -> Result<String> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!("expected ',' or ']', found {other:?}")));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.pos += 1; // {
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(Error::msg(format!(
                    "expected object key at byte {}",
                    self.pos
                )));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(Error::msg(format!("expected ':' at byte {}", self.pos)));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::msg(format!("expected ',' or '}}', found {other:?}")));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let v: Value = from_str("[null, true, -2.5, \"a\\nb\", 12]").unwrap();
        assert_eq!(
            v,
            Value::Array(vec![
                Value::Null,
                Value::Bool(true),
                Value::Number(-2.5),
                Value::String("a\nb".into()),
                Value::Number(12.0),
            ])
        );
        let s = to_string(&v).unwrap();
        let v2: Value = from_str(&s).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn pretty_printing_nests() {
        let v = Value::Object(vec![(
            "xs".to_string(),
            Value::Array(vec![Value::Number(1.0)]),
        )]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"xs\": [\n"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }
}
