//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships a minimal serialization framework under the same
//! crate name. It supports exactly the surface the workspace uses:
//!
//! - `#[derive(Serialize, Deserialize)]` on non-generic structs and enums
//!   (named fields, tuple/newtype/unit structs, unit/tuple/struct variants,
//!   externally tagged like real serde);
//! - `serde::Serialize` / `serde::Deserialize` / `serde::de::DeserializeOwned`
//!   bounds;
//! - a self-describing [`Value`] tree that `serde_json` (the sibling shim)
//!   renders to and parses from JSON text.
//!
//! Swapping the real serde back in is a `Cargo.toml`-only change: the trait
//! names, derive spelling and call sites are compatible.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};

/// A self-describing serialized value (the JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A `Value::Null` with a `'static` address, for "missing field" lookups.
pub static NULL: Value = Value::Null;

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a field in an object body, yielding `Null` when absent (so
/// `Option` fields deserialize to `None`).
pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> &'a Value {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from a message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }

    /// serde-compatible spelling used by some call sites.
    pub fn custom(m: impl fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a serialized value.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a serialized value.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// The `serde::de` module: `DeserializeOwned` is an alias-style supertrait.
pub mod de {
    /// Owned deserialization — identical to [`crate::Deserialize`] here.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// ---------- primitive impls ----------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => {
                        let i = *n as $t;
                        if i as f64 == *n {
                            Ok(i)
                        } else {
                            Err(Error::msg(format!(
                                "number {n} out of range for {}",
                                stringify!($t)
                            )))
                        }
                    }
                    other => Err(Error::msg(format!(
                        "expected number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, found {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg(format!("expected string, found {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array, found {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v
                    .as_array()
                    .ok_or_else(|| Error::msg(format!("expected array, found {v:?}")))?;
                let want = [$($n),+].len();
                if a.len() != want {
                    return Err(Error::msg(format!(
                        "expected {want}-tuple, found array of {}",
                        a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ---------- map/set impls ----------

/// Renders a serialized key as a JSON object key (strings verbatim, numbers
/// via their decimal form — matching real serde_json's integer-key support).
fn key_string(v: &Value) -> Result<String, Error> {
    match v {
        Value::String(s) => Ok(s.clone()),
        Value::Number(n) if n.fract() == 0.0 => Ok(format!("{}", *n as i64)),
        Value::Number(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::msg(format!(
            "map key must be scalar, found {other:?}"
        ))),
    }
}

/// Rebuilds a key type from its JSON object-key string.
fn key_from_str<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::String(s.to_string())) {
        return Ok(k);
    }
    match s.parse::<f64>() {
        Ok(n) => K::from_value(&Value::Number(n)),
        Err(_) => Err(Error::msg(format!("cannot reconstruct map key from {s:?}"))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(&k.to_value()).expect("map key"), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::msg(format!("expected object, found {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((key_from_str(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.to_value()).expect("map key"), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::msg(format!("expected object, found {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((key_from_str(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array, found {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array, found {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
