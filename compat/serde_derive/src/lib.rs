//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Parses the item's token stream directly (no `syn`/`quote` — the build
//! environment has no registry access) and emits impls of the simplified
//! `serde::Serialize` / `serde::Deserialize` traits. Supported shapes are
//! exactly what the workspace uses: non-generic structs (named, tuple,
//! unit) and enums with unit / tuple / struct variants, serialized in
//! serde's externally-tagged JSON representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<(String, VariantKind)>),
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    match parse_item(input) {
        Ok((name, shape)) => {
            let code = if serialize {
                gen_serialize(&name, &shape)
            } else {
                gen_deserialize(&name, &shape)
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------- parsing ----------

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type {name}"
        ));
    }
    let shape = if kind == "struct" {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => return Err(format!("unsupported struct body: {other:?}")),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        }
    };
    Ok((name, shape))
}

/// Advances past leading `#[...]` attributes (including doc comments) and a
/// `pub` / `pub(...)` visibility prefix.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Splits `fields` (the inside of a brace group) on top-level commas,
/// tracking angle-bracket depth so `HashMap<String, u32>` stays one field.
fn split_top_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![vec![]];
    let mut angle = 0i32;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(vec![]);
                    continue;
                }
                _ => {}
            }
        }
        out.last_mut().unwrap().push(t);
    }
    out.retain(|seg| !seg.is_empty());
    out
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for seg in split_top_commas(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&seg, &mut i);
        match seg.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
    Ok(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantKind)>, String> {
    let mut variants = Vec::new();
    for seg in split_top_commas(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&seg, &mut i);
        let name = match seg.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let kind = match seg.get(i) {
            None => VariantKind::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            other => return Err(format!("unsupported variant shape: {other:?}")),
        };
        variants.push((name, kind));
    }
    Ok(variants)
}

// ---------- code generation ----------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut __m: Vec<(String, ::serde::Value)> = Vec::new(); {pushes} ::serde::Value::Object(__m)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, kind)| match kind {
                    VariantKind::Unit => {
                        format!("Self::{v} => ::serde::Value::String({v:?}.to_string()),")
                    }
                    VariantKind::Tuple(1) => format!(
                        "Self::{v}(__f0) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                         ::serde::Serialize::to_value(__f0))]),"
                    ),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "Self::{v}({}) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                             ::serde::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            elems.join(", ")
                        )
                    }
                    VariantKind::Named(fields) => {
                        let binds = fields.join(", ");
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        format!(
                            "Self::{v} {{ {binds} }} => ::serde::Value::Object(vec![({v:?}.to_string(), \
                             ::serde::Value::Object(vec![{}]))]),",
                            pushes.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] #[allow(unused_variables, clippy::all)] \
         impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::field(__obj, {f:?}))?")
                })
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::msg(\
                 format!(\"expected object for {name}, found {{__v:?}}\")))?; \
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| ::serde::Error::msg(\
                 format!(\"expected array for {name}, found {{__v:?}}\")))?; \
                 if __a.len() != {n} {{ return Err(::serde::Error::msg(\
                 format!(\"expected {n} elements for {name}, found {{}}\", __a.len()))); }} \
                 Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::Unit => format!("let _ = __v; Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, k)| matches!(k, VariantKind::Unit))
                .map(|(v, _)| format!("{v:?} => Ok(Self::{v}),"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|(_, k)| !matches!(k, VariantKind::Unit))
                .map(|(v, kind)| match kind {
                    VariantKind::Tuple(1) => format!(
                        "{v:?} => Ok(Self::{v}(::serde::Deserialize::from_value(__inner)?)),"
                    ),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        format!(
                            "{v:?} => {{ \
                             let __a = __inner.as_array().ok_or_else(|| ::serde::Error::msg(\
                             \"expected array for variant {v}\"))?; \
                             if __a.len() != {n} {{ return Err(::serde::Error::msg(\
                             \"wrong tuple arity for variant {v}\")); }} \
                             Ok(Self::{v}({})) }},",
                            elems.join(", ")
                        )
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::field(__o, {f:?}))?"
                                )
                            })
                            .collect();
                        format!(
                            "{v:?} => {{ \
                             let __o = __inner.as_object().ok_or_else(|| ::serde::Error::msg(\
                             \"expected object for variant {v}\"))?; \
                             Ok(Self::{v} {{ {} }}) }},",
                            inits.join(", ")
                        )
                    }
                    VariantKind::Unit => unreachable!(),
                })
                .collect();
            format!(
                "match __v {{ \
                   ::serde::Value::String(__s) => match __s.as_str() {{ \
                     {unit_arms} \
                     __other => Err(::serde::Error::msg(format!(\
                       \"unknown variant {{__other:?}} of {name}\"))), \
                   }}, \
                   ::serde::Value::Object(__m) if __m.len() == 1 => {{ \
                     let (__k, __inner) = &__m[0]; \
                     match __k.as_str() {{ \
                       {tagged_arms} \
                       __other => Err(::serde::Error::msg(format!(\
                         \"unknown variant {{__other:?}} of {name}\"))), \
                     }} \
                   }}, \
                   __other => Err(::serde::Error::msg(format!(\
                     \"expected enum value for {name}, found {{__other:?}}\"))), \
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived] #[allow(unused_variables, clippy::all)] \
         impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}
